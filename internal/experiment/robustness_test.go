package experiment

import (
	"strings"
	"testing"
)

func testRobustnessSpec() RobustnessSpec {
	rs := DefaultRobustnessSpec()
	rs.Base = testSpec()
	rs.Base.Horizon = 1500
	rs.Base.Replications = 3
	rs.Intensities = []float64{0, 0.5, 1}
	rs.Capacity = 400
	return rs
}

func TestRobustnessSpecValidate(t *testing.T) {
	if err := DefaultRobustnessSpec().Validate(); err != nil {
		t.Fatalf("default robustness spec invalid: %v", err)
	}
	bad := []func(*RobustnessSpec){
		func(rs *RobustnessSpec) { rs.Capacity = 0 },
		func(rs *RobustnessSpec) { rs.Policies = nil },
		func(rs *RobustnessSpec) { rs.Intensities = nil },
		func(rs *RobustnessSpec) { rs.Intensities = []float64{0.5, 1.5} },
		func(rs *RobustnessSpec) { rs.Intensities = []float64{-0.1} },
		func(rs *RobustnessSpec) { rs.Base.Replications = 0 },
		func(rs *RobustnessSpec) { rs.Policies = []string{"nope"} },
	}
	for i, mutate := range bad {
		rs := DefaultRobustnessSpec()
		mutate(&rs)
		if err := rs.Validate(); err == nil {
			if _, err2 := RobustnessSweep(rs); err2 == nil {
				t.Fatalf("mutation %d accepted", i)
			}
		}
	}
}

// The sweep completes under the full mixed-fault model at every intensity,
// degrades gracefully (no panic), and actually injects: the hostile points
// must show non-zero degradation counters, while intensity 0 must show
// none.
func TestRobustnessSweepRunsAndDegrades(t *testing.T) {
	rs := testRobustnessSpec()
	res, err := RobustnessSweep(rs)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range rs.Policies {
		if got := len(res.MissRates[name]); got != len(rs.Intensities) {
			t.Fatalf("%s: %d points, want %d", name, got, len(rs.Intensities))
		}
		for ii := range rs.Intensities {
			if res.Failed[name][ii] != 0 {
				t.Fatalf("%s@%g: %d failed runs: %v", name, rs.Intensities[ii], res.Failed[name][ii], res.Errs())
			}
		}
		if d := res.Degradation[name][0]; d.Any() {
			t.Fatalf("%s: intensity 0 recorded degradation %+v", name, d)
		}
		last := len(rs.Intensities) - 1
		d := res.Degradation[name][last]
		if !d.Any() {
			t.Fatalf("%s: full intensity recorded no degradation", name)
		}
		if d.SourceFaultTime <= 0 || d.Overruns <= 0 {
			t.Fatalf("%s: expected dropout time and overruns at full intensity, got %+v", name, d)
		}
	}
}

// Same master seeds → byte-identical summary, across invocations and
// across Parallelism settings. This is the ISSUE's reproducibility
// acceptance criterion for fault-injected runs.
func TestRobustnessSweepReproducible(t *testing.T) {
	rs := testRobustnessSpec()
	rs.Intensities = []float64{0.75}
	rs.Policies = []string{"lsa", "ea-dvfs"}

	old := Parallelism
	defer func() { Parallelism = old }()

	Parallelism = 8
	a, err := RobustnessSweep(rs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RobustnessSweep(rs)
	if err != nil {
		t.Fatal(err)
	}
	Parallelism = 1
	c, err := RobustnessSweep(rs)
	if err != nil {
		t.Fatal(err)
	}
	if a.Summary() != b.Summary() {
		t.Fatalf("two invocations differ:\n%s\nvs\n%s", a.Summary(), b.Summary())
	}
	if a.Summary() != c.Summary() {
		t.Fatalf("Parallelism 8 vs 1 differ:\n%s\nvs\n%s", a.Summary(), c.Summary())
	}
	if !strings.Contains(a.Summary(), "lsa") {
		t.Fatalf("summary missing policy rows:\n%s", a.Summary())
	}
}

// At intensity 0 the fault layer must be completely inert: the sweep's
// miss tallies are bit-identical to the fault-free MissRateSweep on the
// same workload seeds.
func TestRobustnessIntensityZeroMatchesBaseline(t *testing.T) {
	rs := testRobustnessSpec()
	rs.Intensities = []float64{0}
	rs.Policies = []string{"edf", "lsa"}

	res, err := RobustnessSweep(rs)
	if err != nil {
		t.Fatal(err)
	}
	base := rs.Base
	base.Capacities = []float64{rs.Capacity}
	ref, err := MissRateSweep(base, rs.Policies)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range rs.Policies {
		got, want := res.Stats[name][0], ref.Stats[name][0]
		if got != want {
			t.Fatalf("%s: faults-disabled tallies %+v != baseline %+v", name, got, want)
		}
	}
}
