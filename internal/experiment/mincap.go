package experiment

import (
	"fmt"
	"math"

	"github.com/eadvfs/eadvfs/internal/metrics"
)

// MinCapacityResult holds a Table 1 reproduction: for each utilization,
// the mean minimum zero-miss storage capacity under each policy and the
// paper's headline ratio C_min,LSA / C_min,EA-DVFS.
type MinCapacityResult struct {
	Utilizations []float64
	// Mean[policy][i] is the mean C_min at Utilizations[i].
	Mean map[string][]float64
	// Ratio[i] is Mean["lsa"][i] / Mean["ea-dvfs"][i] when both policies
	// were requested in that order; more generally first/second.
	Ratio []float64
	// RatioErr is the standard error of the per-replication ratio.
	RatioErr []float64
	// Skipped counts replications where no capacity in [lo, hi] achieved
	// zero misses (reported, never silently dropped).
	Skipped int
}

// Default Table 1 search bounds: start at MinCapLo, grow geometrically to
// at most MinCapMaxHi (far above any workload's need), bisect to absolute
// resolution MinCapTol. Exported so benchmarks and tests probe exactly the
// search MinCapacity runs.
const (
	MinCapLo    = 1.0
	MinCapMaxHi = 1 << 20
	MinCapTol   = 1.0
)

// MinCapacitySearch finds, by bisection, the smallest storage capacity in
// [lo, hi] for which the given policy finishes every job of the
// replication on time ("the threshold capacity to maintain zero deadline
// miss rate", §5.4). The hi bound is grown geometrically until it achieves
// zero misses; ok is false if even maxHi cannot.
//
// Deadline misses are not perfectly monotone in capacity (a larger initial
// store shifts every lazy start time), but they are monotone in the large;
// bisection returns the smallest zero-miss point of the monotone envelope,
// which is the quantity the paper sweeps. tol is the absolute capacity
// resolution.
func MinCapacitySearch(s Spec, rep Replication, pf PolicyFactory, lo, maxHi, tol float64) (float64, bool, error) {
	if lo <= 0 || maxHi <= lo || tol <= 0 {
		return 0, false, fmt.Errorf("experiment: bad search bounds [%v, %v] tol %v", lo, maxHi, tol)
	}
	misses := func(c float64) (int, error) {
		res, err := RunOne(s, rep, c, pf, false)
		if err != nil {
			return 0, err
		}
		return res.Miss.Missed, nil
	}
	hi := lo
	for {
		m, err := misses(hi)
		if err != nil {
			return 0, false, err
		}
		if m == 0 {
			break
		}
		if hi >= maxHi {
			return 0, false, nil
		}
		hi = math.Min(hi*2, maxHi)
	}
	if hi == lo {
		return lo, true, nil
	}
	loBound := hi / 2 // last known miss (or lo)
	if loBound < lo {
		loBound = lo
	}
	for hi-loBound > tol {
		mid := (loBound + hi) / 2
		m, err := misses(mid)
		if err != nil {
			return 0, false, err
		}
		if m == 0 {
			hi = mid
		} else {
			loBound = mid
		}
	}
	return hi, true, nil
}

// MinCapacitySearcher is the warm-start form of MinCapacitySearch: one
// amortized Runner (shared solar fork, processor, predictor resolution and
// sim arena) serves every probe of every search over the same (spec,
// replication) pair, each infeasible probe exits at its first deadline
// miss instead of simulating to the horizon, and probe outcomes are
// memoized per (policy, capacity) so repeated searches never re-simulate a
// decided capacity.
//
// Warm search returns exactly what the cold search returns. The argument
// (DESIGN.md §14): the probe sequence — geometric growth doubling from lo,
// then bisection on [hi/2, hi] — is fully determined by each probe's
// zero-miss classification, and every mechanism above preserves that
// classification: the early exit stops only after a miss is tallied
// (Missed > 0 iff the full run misses), the memo replays recorded
// classifications, and arena/fork reuse reproduces each run bit for bit
// (pinned by the internal/verify differential). No probe is ever skipped
// on monotonicity grounds, because misses are not perfectly monotone in
// capacity: confirming the envelope's smallest zero-miss point requires
// observing every dyadic predecessor miss, and the searcher does.
type MinCapacitySearcher struct {
	runner *Runner
	pfs    []PolicyFactory
	memo   map[probeKey]bool // capacity → had at least one miss
}

type probeKey struct {
	policy   int
	capacity float64
}

// NewMinCapacitySearcher prepares a warm searcher for one replication.
// pfs are the policy factories the searches select among by index.
func NewMinCapacitySearcher(s Spec, rep Replication, pfs []PolicyFactory) (*MinCapacitySearcher, error) {
	r, err := NewRunner(s, rep)
	if err != nil {
		return nil, err
	}
	return &MinCapacitySearcher{runner: r, pfs: pfs, memo: make(map[probeKey]bool)}, nil
}

// Search runs the warm-start capacity search for policy index pi with the
// same bounds semantics as MinCapacitySearch, returning the identical
// capacity.
func (m *MinCapacitySearcher) Search(pi int, lo, maxHi, tol float64) (float64, bool, error) {
	if lo <= 0 || maxHi <= lo || tol <= 0 {
		return 0, false, fmt.Errorf("experiment: bad search bounds [%v, %v] tol %v", lo, maxHi, tol)
	}
	if pi < 0 || pi >= len(m.pfs) {
		return 0, false, fmt.Errorf("experiment: policy index %d outside [0, %d)", pi, len(m.pfs))
	}
	missed := func(c float64) (bool, error) {
		key := probeKey{policy: pi, capacity: c}
		if v, ok := m.memo[key]; ok {
			return v, nil
		}
		res, err := m.runner.RunCtx(nil, c, m.pfs[pi], false, true)
		if err != nil {
			return false, err
		}
		v := res.Miss.Missed > 0
		m.memo[key] = v
		return v, nil
	}
	hi := lo
	for {
		m, err := missed(hi)
		if err != nil {
			return 0, false, err
		}
		if !m {
			break
		}
		if hi >= maxHi {
			return 0, false, nil
		}
		hi = math.Min(hi*2, maxHi)
	}
	if hi == lo {
		return lo, true, nil
	}
	loBound := hi / 2 // last known miss (or lo)
	if loBound < lo {
		loBound = lo
	}
	for hi-loBound > tol {
		mid := (loBound + hi) / 2
		miss, err := missed(mid)
		if err != nil {
			return 0, false, err
		}
		if !miss {
			hi = mid
		} else {
			loBound = mid
		}
	}
	return hi, true, nil
}

// MinCapacity regenerates Table 1: for each utilization, the ratio of the
// minimum zero-miss capacities of the first policy to the second
// (paper: LSA over EA-DVFS), averaged over replications.
func MinCapacity(s Spec, utils []float64, policyNames []string) (*MinCapacityResult, error) {
	if len(policyNames) != 2 {
		return nil, fmt.Errorf("experiment: Table 1 compares exactly two policies, got %d", len(policyNames))
	}
	if len(utils) == 0 {
		return nil, fmt.Errorf("experiment: no utilizations")
	}
	factories, err := policyFactories(s, policyNames)
	if err != nil {
		return nil, err
	}
	out := &MinCapacityResult{
		Utilizations: append([]float64(nil), utils...),
		Mean:         map[string][]float64{policyNames[0]: make([]float64, len(utils)), policyNames[1]: make([]float64, len(utils))},
		Ratio:        make([]float64, len(utils)),
		RatioErr:     make([]float64, len(utils)),
	}
	const (
		lo    = MinCapLo
		maxHi = MinCapMaxHi
		tol   = MinCapTol
	)
	for ui, u := range utils {
		spec := s
		spec.Utilization = u
		if err := spec.Validate(); err != nil {
			return nil, err
		}
		// Each replication's two bisections run as one parallel job.
		type pair struct {
			ca, cb float64
			ok     bool
		}
		results := make([]pair, spec.Replications)
		var jobs []job
		for r := 0; r < spec.Replications; r++ {
			rep, err := Replicate(spec, r)
			if err != nil {
				return nil, err
			}
			rep.PrepareSource(spec.Horizon) // shared across the capacity search runs
			r, rep := r, rep
			jobs = append(jobs, job{slot: r, run: func() error {
				// Warm-start searcher: one arena, one solar fork and one
				// probe memo per replication job, first-miss early exit on
				// every infeasible probe. Returns exactly the cold
				// MinCapacitySearch capacities (see MinCapacitySearcher).
				search, err := NewMinCapacitySearcher(spec, rep, factories)
				if err != nil {
					return err
				}
				ca, okA, err := search.Search(0, lo, maxHi, tol)
				if err != nil {
					return err
				}
				cb, okB, err := search.Search(1, lo, maxHi, tol)
				if err != nil {
					return err
				}
				results[r] = pair{ca: ca, cb: cb, ok: okA && okB && cb > 0}
				return nil
			}})
		}
		if err := runParallel(jobs); err != nil {
			return nil, err
		}
		var meanA, meanB, ratio metrics.Welford
		for _, p := range results {
			if !p.ok {
				out.Skipped++
				continue
			}
			meanA.Add(p.ca)
			meanB.Add(p.cb)
			ratio.Add(p.ca / p.cb)
		}
		out.Mean[policyNames[0]][ui] = meanA.Mean()
		out.Mean[policyNames[1]][ui] = meanB.Mean()
		out.Ratio[ui] = ratio.Mean()
		out.RatioErr[ui] = ratio.StdErr()
	}
	return out, nil
}
