package experiment

import (
	"fmt"
	"math"

	"github.com/eadvfs/eadvfs/internal/metrics"
)

// MinCapacityResult holds a Table 1 reproduction: for each utilization,
// the mean minimum zero-miss storage capacity under each policy and the
// paper's headline ratio C_min,LSA / C_min,EA-DVFS.
type MinCapacityResult struct {
	Utilizations []float64
	// Mean[policy][i] is the mean C_min at Utilizations[i].
	Mean map[string][]float64
	// Ratio[i] is Mean["lsa"][i] / Mean["ea-dvfs"][i] when both policies
	// were requested in that order; more generally first/second.
	Ratio []float64
	// RatioErr is the standard error of the per-replication ratio.
	RatioErr []float64
	// Skipped counts replications where no capacity in [lo, hi] achieved
	// zero misses (reported, never silently dropped).
	Skipped int
}

// MinCapacitySearch finds, by bisection, the smallest storage capacity in
// [lo, hi] for which the given policy finishes every job of the
// replication on time ("the threshold capacity to maintain zero deadline
// miss rate", §5.4). The hi bound is grown geometrically until it achieves
// zero misses; ok is false if even maxHi cannot.
//
// Deadline misses are not perfectly monotone in capacity (a larger initial
// store shifts every lazy start time), but they are monotone in the large;
// bisection returns the smallest zero-miss point of the monotone envelope,
// which is the quantity the paper sweeps. tol is the absolute capacity
// resolution.
func MinCapacitySearch(s Spec, rep Replication, pf PolicyFactory, lo, maxHi, tol float64) (float64, bool, error) {
	if lo <= 0 || maxHi <= lo || tol <= 0 {
		return 0, false, fmt.Errorf("experiment: bad search bounds [%v, %v] tol %v", lo, maxHi, tol)
	}
	misses := func(c float64) (int, error) {
		res, err := RunOne(s, rep, c, pf, false)
		if err != nil {
			return 0, err
		}
		return res.Miss.Missed, nil
	}
	hi := lo
	for {
		m, err := misses(hi)
		if err != nil {
			return 0, false, err
		}
		if m == 0 {
			break
		}
		if hi >= maxHi {
			return 0, false, nil
		}
		hi = math.Min(hi*2, maxHi)
	}
	if hi == lo {
		return lo, true, nil
	}
	loBound := hi / 2 // last known miss (or lo)
	if loBound < lo {
		loBound = lo
	}
	for hi-loBound > tol {
		mid := (loBound + hi) / 2
		m, err := misses(mid)
		if err != nil {
			return 0, false, err
		}
		if m == 0 {
			hi = mid
		} else {
			loBound = mid
		}
	}
	return hi, true, nil
}

// MinCapacity regenerates Table 1: for each utilization, the ratio of the
// minimum zero-miss capacities of the first policy to the second
// (paper: LSA over EA-DVFS), averaged over replications.
func MinCapacity(s Spec, utils []float64, policyNames []string) (*MinCapacityResult, error) {
	if len(policyNames) != 2 {
		return nil, fmt.Errorf("experiment: Table 1 compares exactly two policies, got %d", len(policyNames))
	}
	if len(utils) == 0 {
		return nil, fmt.Errorf("experiment: no utilizations")
	}
	factories, err := policyFactories(s, policyNames)
	if err != nil {
		return nil, err
	}
	out := &MinCapacityResult{
		Utilizations: append([]float64(nil), utils...),
		Mean:         map[string][]float64{policyNames[0]: make([]float64, len(utils)), policyNames[1]: make([]float64, len(utils))},
		Ratio:        make([]float64, len(utils)),
		RatioErr:     make([]float64, len(utils)),
	}
	const (
		lo    = 1.0
		maxHi = 1 << 20 // far above any workload's need; growth is geometric
		tol   = 1.0
	)
	for ui, u := range utils {
		spec := s
		spec.Utilization = u
		if err := spec.Validate(); err != nil {
			return nil, err
		}
		// Each replication's two bisections run as one parallel job.
		type pair struct {
			ca, cb float64
			ok     bool
		}
		results := make([]pair, spec.Replications)
		var jobs []job
		for r := 0; r < spec.Replications; r++ {
			rep, err := Replicate(spec, r)
			if err != nil {
				return nil, err
			}
			rep.PrepareSource(spec.Horizon) // shared across the capacity search runs
			r, rep := r, rep
			jobs = append(jobs, job{slot: r, run: func() error {
				ca, okA, err := MinCapacitySearch(spec, rep, factories[0], lo, maxHi, tol)
				if err != nil {
					return err
				}
				cb, okB, err := MinCapacitySearch(spec, rep, factories[1], lo, maxHi, tol)
				if err != nil {
					return err
				}
				results[r] = pair{ca: ca, cb: cb, ok: okA && okB && cb > 0}
				return nil
			}})
		}
		if err := runParallel(jobs); err != nil {
			return nil, err
		}
		var meanA, meanB, ratio metrics.Welford
		for _, p := range results {
			if !p.ok {
				out.Skipped++
				continue
			}
			meanA.Add(p.ca)
			meanB.Add(p.cb)
			ratio.Add(p.ca / p.cb)
		}
		out.Mean[policyNames[0]][ui] = meanA.Mean()
		out.Mean[policyNames[1]][ui] = meanB.Mean()
		out.Ratio[ui] = ratio.Mean()
		out.RatioErr[ui] = ratio.StdErr()
	}
	return out, nil
}
