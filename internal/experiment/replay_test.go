package experiment

import (
	"reflect"
	"testing"
)

// TestDeterministicReplay is the golden determinism check the perf work
// must preserve: the same (seed, replication, policy) always produces an
// identical Result — every field, including per-task stats, meters, the
// recorded energy series and the dispatched-event count. The pooled DES
// events, the reused scheduling context, the prefix-sum caches and the
// forked solar traces are all invisible at this level or they are bugs.
func TestDeterministicReplay(t *testing.T) {
	spec := DefaultSpec()
	spec.Horizon = 2000
	for _, seed := range []uint64{1, 2, 3} {
		for _, policy := range []string{"edf", "lsa", "ea-dvfs"} {
			pf, err := Policy(policy)
			if err != nil {
				t.Fatal(err)
			}
			s := spec
			s.Seed = seed

			run := func(prepared bool) any {
				rep, err := Replicate(s, 1)
				if err != nil {
					t.Fatal(err)
				}
				if prepared {
					rep.PrepareSource(s.Horizon)
				}
				res, err := RunOne(s, rep, 300, pf, true)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}

			first := run(false)
			if again := run(false); !reflect.DeepEqual(first, again) {
				t.Fatalf("seed %d, policy %s: replay diverged\nfirst: %+v\nagain: %+v",
					seed, policy, first, again)
			}
			// A run on a forked, pre-warmed trace is the same run.
			if forked := run(true); !reflect.DeepEqual(first, forked) {
				t.Fatalf("seed %d, policy %s: forked-source run diverged\nfresh: %+v\nforked: %+v",
					seed, policy, first, forked)
			}
		}
	}
}
