package experiment

// Sweep sharding: a sweep is embarrassingly parallel across replications
// and grid points, and every per-run result is deterministic, so a sweep
// can be split into disjoint shards, computed on different machines, and
// merged back into the exact result a single node would have produced.
//
// The byte-identity contract (DESIGN.md §13): a shard carries the *raw*
// per-cell material of its slice of the (replication × capacity × policy)
// grid — integer miss tallies for miss-rate sweeps, per-replication
// partial energy curves for remaining-energy sweeps — and MergeShards
// scatters that material back into the full grid before running the very
// same aggregation code the single-node sweep runs (aggregateMissRate /
// aggregateRemaining). Identical inputs through identical float operations
// in identical order means the merged result is bit-for-bit the
// single-node result, regardless of how many shards there were or in what
// order they arrived. Float64 values survive the JSON hop exactly:
// encoding/json emits the shortest round-trip representation.

import (
	"context"
	"fmt"

	"github.com/eadvfs/eadvfs/internal/metrics"
	"github.com/eadvfs/eadvfs/internal/obs"
)

// SweepKinds lists the sweep kinds that can be sharded and served:
// "missrate" (Figures 8–9) and "remaining" (Figures 6–7).
func SweepKinds() []string { return []string{"missrate", "remaining"} }

// ValidateSweepKind rejects unknown sweep kinds.
func ValidateSweepKind(kind string) error {
	switch kind {
	case "missrate", "remaining":
		return nil
	default:
		return fmt.Errorf("experiment: unknown sweep kind %q (want missrate or remaining)", kind)
	}
}

// Shard names one disjoint slice of a sweep's (replication × capacity)
// grid: replications [RepLo, RepHi) at capacity indices [CapLo, CapHi).
// Policies are never split — every shard compares all requested policies
// under its replications, preserving the paper's paired-comparison design
// (§5.2). Replication r derives its task set and source seed from the
// master seed alone (Replicate), so a shard computes exactly what a
// single-node sweep computes for the same cells.
type Shard struct {
	// Index is the shard's position in the plan; merge order is fixed by
	// it, independent of arrival order.
	Index int `json:"index"`
	// Count is the total number of shards in the plan.
	Count int `json:"count"`
	// [RepLo, RepHi) is the shard's replication (seed) window.
	RepLo int `json:"rep_lo"`
	RepHi int `json:"rep_hi"`
	// [CapLo, CapHi) indexes into Spec.Capacities. Remaining-energy shards
	// always span the full capacity sweep (the per-replication curve folds
	// all capacities together).
	CapLo int `json:"cap_lo"`
	CapHi int `json:"cap_hi"`
}

// Reps returns the number of replications in the shard's window.
func (sh Shard) Reps() int { return sh.RepHi - sh.RepLo }

// Caps returns the number of capacity points in the shard's window.
func (sh Shard) Caps() int { return sh.CapHi - sh.CapLo }

// Validate checks the shard against the spec it claims to slice. Workers
// run it on every sharded request (internal/service), so a coordinator
// bug — or a stale plan against a different spec — fails loudly instead
// of computing the wrong cells.
func (sh Shard) Validate(s Spec, kind string) error {
	if err := ValidateSweepKind(kind); err != nil {
		return err
	}
	switch {
	case sh.Count < 1:
		return fmt.Errorf("experiment: shard count %d < 1", sh.Count)
	case sh.Index < 0 || sh.Index >= sh.Count:
		return fmt.Errorf("experiment: shard index %d outside [0,%d)", sh.Index, sh.Count)
	case sh.RepLo < 0 || sh.RepHi > s.Replications || sh.RepLo >= sh.RepHi:
		return fmt.Errorf("experiment: shard replication window [%d,%d) outside [0,%d)",
			sh.RepLo, sh.RepHi, s.Replications)
	case sh.CapLo < 0 || sh.CapHi > len(s.Capacities) || sh.CapLo >= sh.CapHi:
		return fmt.Errorf("experiment: shard capacity window [%d,%d) outside [0,%d)",
			sh.CapLo, sh.CapHi, len(s.Capacities))
	}
	if kind == "remaining" && (sh.CapLo != 0 || sh.CapHi != len(s.Capacities)) {
		return fmt.Errorf("experiment: remaining-energy shard must span all capacities, got [%d,%d)",
			sh.CapLo, sh.CapHi)
	}
	return nil
}

// PlanShards splits a sweep into up to n disjoint shards. Replication
// (seed) windows are the primary axis; miss-rate sweeps additionally split
// the capacity grid when there are more requested shards than
// replications. The plan always covers the full grid exactly once, and
// fewer shards than requested are returned when the grid is too small to
// split further. Shard indices are assigned in row-major
// (replication-window, capacity-window) order.
func PlanShards(kind string, s Spec, n int) ([]Shard, error) {
	if err := ValidateSweepKind(kind); err != nil {
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if n < 1 {
		n = 1
	}
	repShards := n
	if repShards > s.Replications {
		repShards = s.Replications
	}
	capShards := 1
	if kind == "missrate" && repShards < n {
		capShards = n / repShards
		if capShards > len(s.Capacities) {
			capShards = len(s.Capacities)
		}
	}
	shards := make([]Shard, 0, repShards*capShards)
	for rw := 0; rw < repShards; rw++ {
		for cw := 0; cw < capShards; cw++ {
			shards = append(shards, Shard{
				RepLo: rw * s.Replications / repShards,
				RepHi: (rw + 1) * s.Replications / repShards,
				CapLo: cw * len(s.Capacities) / capShards,
				CapHi: (cw + 1) * len(s.Capacities) / capShards,
			})
		}
	}
	for i := range shards {
		shards[i].Index = i
		shards[i].Count = len(shards)
	}
	return shards, nil
}

// ShardResult is one shard's raw contribution to a sweep, shaped for exact
// merging rather than human consumption:
//
//   - missrate: Tallies holds the integer deadline-outcome counts of every
//     (replication, capacity, policy) cell of the shard, row-major with the
//     policy index minor — the same layout MissRateSweepCtx uses, offset to
//     the shard's window. Integers merge exactly by placement.
//   - remaining: Curves[i][pi][k] is replication RepLo+i's per-policy
//     partial curve Σ_ci EC(t_k)/C_ci (repEnergyCurves) — the exact
//     floating-point values the single-node sweep folds in replication
//     order.
type ShardResult struct {
	Kind    string              `json:"kind"`
	Shard   Shard               `json:"shard"`
	Tallies []metrics.MissStats `json:"tallies,omitempty"`
	Curves  [][][]float64       `json:"curves,omitempty"`
}

// RunShard executes one shard of a sweep (RunShardCtx without
// cancellation).
func RunShard(kind string, s Spec, policyNames []string, sh Shard) (*ShardResult, error) {
	return RunShardCtx(context.Background(), kind, s, policyNames, sh)
}

// RunShardCtx executes one shard of a sweep: the shard's replications are
// derived from the master seed exactly as a single-node sweep derives
// them, runs fan out across Parallelism workers, and the raw per-cell
// material is returned for merging. This is what a worker node computes
// when a coordinator posts a sharded /v1/sweep request.
func RunShardCtx(ctx context.Context, kind string, s Spec, policyNames []string, sh Shard) (*ShardResult, error) {
	// Phase spans (DESIGN.md §15): when the spec carries a span sink, the
	// four stages of a shard — deriving the plan, realizing the solar
	// sample paths, the parallel simulation fan-out, and the aggregation
	// fold — each emit one wall-clock span under the sink's parent
	// context. A nil sink costs one comparison per phase.
	traceParent := obs.SpanParentOf(s.Spans)
	phase := func(name string) *obs.ActiveSpan {
		return obs.StartSpan(s.Spans, "experiment", name, traceParent)
	}

	sp := phase("plan")
	if err := s.Validate(); err != nil {
		sp.End()
		return nil, err
	}
	if err := sh.Validate(s, kind); err != nil {
		sp.End()
		return nil, err
	}
	factories, err := policyFactories(s, policyNames)
	if err != nil {
		sp.End()
		return nil, err
	}
	nr := sh.Reps()
	reps := make([]Replication, nr)
	for i := range reps {
		if reps[i], err = Replicate(s, sh.RepLo+i); err != nil {
			sp.End()
			return nil, err
		}
	}
	sp.SetInt("shard", int64(sh.Index))
	sp.SetInt("replications", int64(nr))
	sp.End()

	sp = phase("realize-solar")
	for i := range reps {
		reps[i].PrepareSource(s.Horizon)
	}
	sp.SetFloat("horizon", s.Horizon)
	sp.End()

	np := len(policyNames)
	out := &ShardResult{Kind: kind, Shard: sh}
	switch kind {
	case "missrate":
		ncw := sh.Caps()
		tallies := make([]metrics.MissStats, nr*ncw*np)
		var jobs []job
		for i := 0; i < nr; i++ {
			for c := 0; c < ncw; c++ {
				for pi := 0; pi < np; pi++ {
					slot := (i*ncw+c)*np + pi
					i, c, pi := i, c, pi
					jobs = append(jobs, job{slot: slot, run: func() error {
						res, err := RunOneCtx(ctx, s, reps[i], s.Capacities[sh.CapLo+c], factories[pi], false)
						if err != nil {
							return err
						}
						tallies[slot] = res.Miss
						return nil
					}})
				}
			}
		}
		sp = phase("simulate")
		sp.SetInt("runs", int64(len(jobs)))
		if err := runParallelCtx(ctx, jobs); err != nil {
			sp.SetAttr("error", err.Error())
			sp.End()
			return nil, err
		}
		sp.End()
		sp = phase("aggregate")
		out.Tallies = tallies
		sp.SetInt("cells", int64(len(tallies)))
		sp.End()
	case "remaining":
		nc := len(s.Capacities)
		series := make([]*metrics.Series, nr*nc*np)
		var jobs []job
		for i := 0; i < nr; i++ {
			for ci := 0; ci < nc; ci++ {
				for pi := 0; pi < np; pi++ {
					slot := (i*nc+ci)*np + pi
					i, ci, pi := i, ci, pi
					jobs = append(jobs, job{slot: slot, run: func() error {
						res, err := RunOneCtx(ctx, s, reps[i], s.Capacities[ci], factories[pi], true)
						if err != nil {
							return err
						}
						series[slot] = res.EnergySeries
						return nil
					}})
				}
			}
		}
		sp = phase("simulate")
		sp.SetInt("runs", int64(len(jobs)))
		if err := runParallelCtx(ctx, jobs); err != nil {
			sp.SetAttr("error", err.Error())
			sp.End()
			return nil, err
		}
		sp.End()
		sp = phase("aggregate")
		out.Curves = make([][][]float64, nr)
		for i := 0; i < nr; i++ {
			out.Curves[i] = repEnergyCurves(s, np, series[i*nc*np:(i+1)*nc*np])
		}
		sp.SetInt("curves", int64(nr))
		sp.End()
	}
	return out, nil
}

// MergedSweep is the output of MergeShards: exactly one of MissRate /
// Remaining is set, per Kind. MissingCells counts grid cells (replications
// for remaining-energy sweeps) no shard covered — zero for a complete
// merge, positive only when a partial merge was explicitly allowed.
type MergedSweep struct {
	Kind         string
	MissRate     *MissRateResult
	Remaining    *RemainingEnergyResult
	MissingCells int
}

// MergeShards reassembles shard results into the full sweep result.
// Results may arrive in any order and may contain nils (failed shards);
// placement is by each shard's own coordinates, so the merge is
// bit-reproducible regardless of arrival order. Overlapping coverage is
// always an error — two shards claiming the same cell means the plan was
// violated and the aggregate would double-count. Missing coverage is an
// error unless allowPartial is set, in which case the aggregation runs
// over the covered cells only (graceful degradation: a fleet that lost a
// shard still reports a statistically valid estimate over the completed
// cells, with MissingCells accounting for the loss).
//
// A complete merge is byte-identical (after JSON marshalling) to the
// single-node sweep for the same spec and policies: the scattered raw
// material is the single-node slot array, and the same aggregation code
// consumes it in the same order.
func MergeShards(kind string, s Spec, policyNames []string, results []*ShardResult, allowPartial bool) (*MergedSweep, error) {
	if err := ValidateSweepKind(kind); err != nil {
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if len(policyNames) == 0 {
		return nil, fmt.Errorf("experiment: no policies requested")
	}
	nc, np := len(s.Capacities), len(policyNames)
	out := &MergedSweep{Kind: kind}
	switch kind {
	case "missrate":
		tallies := make([]metrics.MissStats, s.Replications*nc*np)
		covered := make([]bool, len(tallies))
		for _, res := range results {
			if res == nil {
				continue
			}
			if err := checkShardResult(res, s, kind); err != nil {
				return nil, err
			}
			ncw := res.Shard.Caps()
			if want := res.Shard.Reps() * ncw * np; len(res.Tallies) != want {
				return nil, fmt.Errorf("experiment: shard %d carries %d tallies, want %d",
					res.Shard.Index, len(res.Tallies), want)
			}
			for i := 0; i < res.Shard.Reps(); i++ {
				for c := 0; c < ncw; c++ {
					for pi := 0; pi < np; pi++ {
						g := ((res.Shard.RepLo+i)*nc+(res.Shard.CapLo+c))*np + pi
						if covered[g] {
							return nil, fmt.Errorf("experiment: shard %d overlaps cell (rep %d, cap %d, policy %d)",
								res.Shard.Index, res.Shard.RepLo+i, res.Shard.CapLo+c, pi)
						}
						covered[g] = true
						tallies[g] = res.Tallies[(i*ncw+c)*np+pi]
					}
				}
			}
		}
		for _, ok := range covered {
			if !ok {
				out.MissingCells++
			}
		}
		if out.MissingCells > 0 && !allowPartial {
			return nil, fmt.Errorf("experiment: merge covers %d/%d cells; %d missing",
				len(covered)-out.MissingCells, len(covered), out.MissingCells)
		}
		out.MissRate = aggregateMissRate(s, policyNames, tallies, covered)
	case "remaining":
		curves := make([][][]float64, s.Replications)
		covered := make([]bool, s.Replications)
		for _, res := range results {
			if res == nil {
				continue
			}
			if err := checkShardResult(res, s, kind); err != nil {
				return nil, err
			}
			if len(res.Curves) != res.Shard.Reps() {
				return nil, fmt.Errorf("experiment: shard %d carries %d replication curves, want %d",
					res.Shard.Index, len(res.Curves), res.Shard.Reps())
			}
			for i, rc := range res.Curves {
				r := res.Shard.RepLo + i
				if covered[r] {
					return nil, fmt.Errorf("experiment: shard %d overlaps replication %d", res.Shard.Index, r)
				}
				if len(rc) != np {
					return nil, fmt.Errorf("experiment: shard %d replication %d carries %d policy curves, want %d",
						res.Shard.Index, r, len(rc), np)
				}
				n := int(s.Horizon) + 1
				for pi := range rc {
					if len(rc[pi]) != n {
						return nil, fmt.Errorf("experiment: shard %d replication %d policy %d curve has %d samples, want %d",
							res.Shard.Index, r, pi, len(rc[pi]), n)
					}
				}
				covered[r] = true
				curves[r] = rc
			}
		}
		for _, ok := range covered {
			if !ok {
				out.MissingCells++
			}
		}
		if out.MissingCells > 0 && !allowPartial {
			return nil, fmt.Errorf("experiment: merge covers %d/%d replications; %d missing",
				len(covered)-out.MissingCells, len(covered), out.MissingCells)
		}
		var err error
		out.Remaining, err = aggregateRemaining(s, policyNames, curves, covered)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// checkShardResult validates one shard result's identity against the merge
// it is joining.
func checkShardResult(res *ShardResult, s Spec, kind string) error {
	if res.Kind != kind {
		return fmt.Errorf("experiment: shard %d is a %q result, merging %q", res.Shard.Index, res.Kind, kind)
	}
	return res.Shard.Validate(s, kind)
}
