package experiment

import (
	"context"
	"fmt"

	"github.com/eadvfs/eadvfs/internal/energy"
	"github.com/eadvfs/eadvfs/internal/metrics"
	"github.com/eadvfs/eadvfs/internal/obs"
)

// SourceTrace regenerates Figure 5: one sample path of the eq. (13) solar
// source, one sample per time unit over the horizon.
func SourceTrace(seed uint64, horizon int) *metrics.Series {
	if horizon <= 0 {
		panic("experiment: non-positive horizon")
	}
	src := energy.NewSolarModel(seed)
	s := metrics.NewSeries(0, 1, horizon)
	for k := 0; k < horizon; k++ {
		s.Values[k] = src.PowerAt(float64(k))
	}
	return s
}

// RemainingEnergyResult holds the Figures 6–7 curves: for each policy, the
// normalized remaining energy EC(t)/C averaged with equal weight over the
// capacity sweep and the replications (§5.2).
type RemainingEnergyResult struct {
	Spec   Spec
	Curves map[string]*metrics.Series
}

// RemainingEnergy regenerates Figure 6 (spec.Utilization = 0.4) or
// Figure 7 (0.8) for the named policies. Simulations run in parallel
// across Parallelism workers; the result is deterministic.
func RemainingEnergy(s Spec, policyNames []string) (*RemainingEnergyResult, error) {
	return RemainingEnergyCtx(context.Background(), s, policyNames)
}

// RemainingEnergyCtx is RemainingEnergy under a cancellation context:
// cancellation stops queued replications at pickup, aborts running engines
// mid-flight, and surfaces as a *CancelledError instead of a partial
// (and therefore wrong) average.
func RemainingEnergyCtx(ctx context.Context, s Spec, policyNames []string) (*RemainingEnergyResult, error) {
	traceParent := obs.SpanParentOf(s.Spans)
	phase := func(name string) *obs.ActiveSpan {
		return obs.StartSpan(s.Spans, "experiment", name, traceParent)
	}
	plan := phase("plan")
	if err := s.Validate(); err != nil {
		plan.End()
		return nil, err
	}
	factories, err := policyFactories(s, policyNames)
	if err != nil {
		plan.End()
		return nil, err
	}
	reps, err := replicateAll(s)
	if err != nil {
		plan.End()
		return nil, err
	}

	// One slot per (replication, capacity, policy).
	nc, np := len(s.Capacities), len(policyNames)
	series := make([]*metrics.Series, s.Replications*nc*np)
	var jobs []job
	for r := 0; r < s.Replications; r++ {
		for ci := range s.Capacities {
			for pi := range policyNames {
				slot := (r*nc+ci)*np + pi
				r, ci, pi := r, ci, pi
				jobs = append(jobs, job{slot: slot, run: func() error {
					res, err := RunOneCtx(ctx, s, reps[r], s.Capacities[ci], factories[pi], true)
					if err != nil {
						return err
					}
					series[slot] = res.EnergySeries
					return nil
				}})
			}
		}
	}
	plan.SetInt("runs", int64(len(jobs)))
	plan.End()
	sim := phase("simulate")
	sim.SetInt("runs", int64(len(jobs)))
	if err := runParallelCtx(ctx, jobs); err != nil {
		sim.SetAttr("error", err.Error())
		sim.End()
		return nil, err
	}
	sim.End()
	agg := phase("aggregate")
	defer agg.End()

	// Fold each replication's (capacity, policy) block into per-policy
	// partial curves, then fold replications in r order. This two-level
	// fold is the merge contract: a shard ships its replications' partial
	// curves and MergeShards runs the identical outer fold, so a complete
	// merge is bit-identical to this single-node path.
	curves := make([][][]float64, s.Replications)
	for r := 0; r < s.Replications; r++ {
		curves[r] = repEnergyCurves(s, np, series[r*nc*np:(r+1)*nc*np])
	}
	return aggregateRemaining(s, policyNames, curves, nil)
}

// repEnergyCurves folds one replication's (capacity, policy) block of
// energy series — block[ci*np+pi], covering the full capacity sweep — into
// np normalized partial curves: curve[pi][k] = Σ_ci EC(t_k)/C_ci, summed
// in capacity order.
func repEnergyCurves(s Spec, np int, block []*metrics.Series) [][]float64 {
	n := int(s.Horizon) + 1
	curves := make([][]float64, np)
	for pi := range curves {
		curves[pi] = make([]float64, n)
	}
	for ci, capacity := range s.Capacities {
		for pi := 0; pi < np; pi++ {
			dst := curves[pi]
			for k, v := range block[ci*np+pi].Values {
				dst[k] += v / capacity
			}
		}
	}
	return curves
}

// aggregateRemaining folds per-replication partial curves (repEnergyCurves
// output, indexed by replication) into the Figures 6–7 averages.
// Replications are folded in r order so the result is deterministic. When
// present is non-nil, replications marked absent are skipped (curves[r]
// may be nil) and the average runs over the covered replications only;
// present == nil means full coverage.
func aggregateRemaining(s Spec, policyNames []string, curves [][][]float64, present []bool) (*RemainingEnergyResult, error) {
	n := int(s.Horizon) + 1
	np := len(policyNames)
	acc := make(map[string]*metrics.Series, np)
	for _, name := range policyNames {
		acc[name] = metrics.NewSeries(0, 1, n)
	}
	completed := 0
	for r := 0; r < s.Replications; r++ {
		if present != nil && !present[r] {
			continue
		}
		completed++
		for pi, name := range policyNames {
			dst := acc[name].Values
			for k, v := range curves[r][pi] {
				dst[k] += v
			}
		}
	}
	if completed == 0 {
		return nil, fmt.Errorf("experiment: no replications covered")
	}
	div := float64(completed * len(s.Capacities))
	for _, sr := range acc {
		for k := range sr.Values {
			sr.Values[k] /= div
		}
	}
	return &RemainingEnergyResult{Spec: s, Curves: acc}, nil
}

// MissRateResult holds a Figures 8–9 sweep: per policy, the deadline miss
// rate at each storage capacity (jobs missed / jobs released, pooled over
// replications).
type MissRateResult struct {
	Spec       Spec
	Capacities []float64
	// Rates[policy][i] is the miss rate at Capacities[i].
	Rates map[string][]float64
	// Stats carries the pooled tallies for confidence reporting.
	Stats map[string][]metrics.MissStats
	// StdErr[policy][i] is the standard error of the per-replication
	// miss rate — the error bar of the pooled point.
	StdErr map[string][]float64
}

// NormalizedCapacity returns capacity i divided by the largest capacity in
// the sweep — the figures' x axis.
func (m *MissRateResult) NormalizedCapacity(i int) float64 {
	maxC := m.Capacities[len(m.Capacities)-1]
	return m.Capacities[i] / maxC
}

// MissRateSweep regenerates Figure 8 (U = 0.4) or Figure 9 (U = 0.8).
// Simulations run in parallel across Parallelism workers; the pooled
// tallies are merged in deterministic order.
func MissRateSweep(s Spec, policyNames []string) (*MissRateResult, error) {
	return MissRateSweepCtx(context.Background(), s, policyNames)
}

// MissRateSweepCtx is MissRateSweep under a cancellation context: an
// aborted request (or an expired per-request timeout) stops
// queued-but-unstarted replications at the pickup path, aborts running
// engines at their next poll, and returns a *CancelledError — a partial
// pooled miss rate is statistically meaningless, so none is produced.
func MissRateSweepCtx(ctx context.Context, s Spec, policyNames []string) (*MissRateResult, error) {
	traceParent := obs.SpanParentOf(s.Spans)
	phase := func(name string) *obs.ActiveSpan {
		return obs.StartSpan(s.Spans, "experiment", name, traceParent)
	}
	plan := phase("plan")
	if err := s.Validate(); err != nil {
		plan.End()
		return nil, err
	}
	factories, err := policyFactories(s, policyNames)
	if err != nil {
		plan.End()
		return nil, err
	}
	reps, err := replicateAll(s)
	if err != nil {
		plan.End()
		return nil, err
	}

	nc, np := len(s.Capacities), len(policyNames)
	tallies := make([]metrics.MissStats, s.Replications*nc*np)
	var jobs []job
	for r := 0; r < s.Replications; r++ {
		for ci := range s.Capacities {
			for pi := range policyNames {
				slot := (r*nc+ci)*np + pi
				r, ci, pi := r, ci, pi
				jobs = append(jobs, job{slot: slot, run: func() error {
					res, err := RunOneCtx(ctx, s, reps[r], s.Capacities[ci], factories[pi], false)
					if err != nil {
						return err
					}
					tallies[slot] = res.Miss
					return nil
				}})
			}
		}
	}
	plan.SetInt("runs", int64(len(jobs)))
	plan.End()
	sim := phase("simulate")
	sim.SetInt("runs", int64(len(jobs)))
	if err := runParallelCtx(ctx, jobs); err != nil {
		sim.SetAttr("error", err.Error())
		sim.End()
		return nil, err
	}
	sim.End()
	agg := phase("aggregate")
	defer agg.End()
	return aggregateMissRate(s, policyNames, tallies, nil), nil
}

// aggregateMissRate pools per-run tallies — slot layout (r*nc+ci)*np+pi —
// into the Figures 8–9 result. The fold order (replication outermost,
// policy innermost) fixes the Welford accumulation sequence, so the same
// tallies always produce bit-identical standard errors; MergeShards runs
// this same fold over scattered shard tallies. When present is non-nil,
// slots marked absent are skipped and the pooled rates cover the remaining
// cells only; present == nil means full coverage.
func aggregateMissRate(s Spec, policyNames []string, tallies []metrics.MissStats, present []bool) *MissRateResult {
	nc, np := len(s.Capacities), len(policyNames)
	out := &MissRateResult{
		Spec:       s,
		Capacities: append([]float64(nil), s.Capacities...),
		Rates:      make(map[string][]float64, np),
		Stats:      make(map[string][]metrics.MissStats, np),
		StdErr:     make(map[string][]float64, np),
	}
	acc := make(map[string][]metrics.Welford, np)
	for _, name := range policyNames {
		out.Rates[name] = make([]float64, nc)
		out.Stats[name] = make([]metrics.MissStats, nc)
		out.StdErr[name] = make([]float64, nc)
		acc[name] = make([]metrics.Welford, nc)
	}
	for r := 0; r < s.Replications; r++ {
		for ci := range s.Capacities {
			for pi, name := range policyNames {
				slot := (r*nc+ci)*np + pi
				if present != nil && !present[slot] {
					continue
				}
				tally := tallies[slot]
				out.Stats[name][ci].Add(tally)
				acc[name][ci].Add(tally.Rate())
			}
		}
	}
	for _, name := range policyNames {
		for ci := range s.Capacities {
			out.Rates[name][ci] = out.Stats[name][ci].Rate()
			out.StdErr[name][ci] = acc[name][ci].StdErr()
		}
	}
	return out
}

// replicateAll derives every replication up front (cheap; keeps worker
// closures free of generator state).
func replicateAll(s Spec) ([]Replication, error) {
	reps := make([]Replication, s.Replications)
	for r := range reps {
		var err error
		reps[r], err = Replicate(s, r)
		if err != nil {
			return nil, err
		}
		// One realized trace per replication, shared (via Fork) by every
		// paired policy/capacity run below; warmed to the horizon so the
		// parallel workers never mutate the master.
		reps[r].PrepareSource(s.Horizon)
	}
	return reps, nil
}

func policyFactories(s Spec, names []string) ([]PolicyFactory, error) {
	return s.Policies(names)
}
