package experiment

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// A cancelled context stops queued jobs at pickup and surfaces as a
// *CancelledError that unwraps to the context's error.
func TestRunParallelCtxCancelMidBatch(t *testing.T) {
	old := Parallelism
	defer func() { Parallelism = old }()
	Parallelism = 2

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var ran atomic.Int32
	jobs := make([]job, 12)
	for i := range jobs {
		i := i
		jobs[i] = job{slot: i, run: func() error {
			ran.Add(1)
			if i == 0 {
				cancel()
			}
			time.Sleep(5 * time.Millisecond)
			return nil
		}}
	}

	done := make(chan error, 1)
	go func() { done <- runParallelCtx(ctx, jobs) }()
	select {
	case err := <-done:
		var ce *CancelledError
		if !errors.As(err, &ce) {
			t.Fatalf("runParallelCtx = %v, want *CancelledError", err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("error %v does not unwrap to context.Canceled", err)
		}
		if ce.Skipped == 0 || ce.Done+ce.Skipped != ce.Total || ce.Total != len(jobs) {
			t.Fatalf("partial accounting %+v inconsistent for %d jobs", ce, len(jobs))
		}
		if int(ran.Load()) != ce.Done {
			t.Fatalf("%d jobs actually ran, error reports %d", ran.Load(), ce.Done)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled batch hung")
	}
}

// A context cancelled before the batch starts skips every job.
func TestRunParallelCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	jobs := []job{{slot: 0, run: func() error { t.Error("job ran under cancelled ctx"); return nil }}}
	err := runParallelCtx(ctx, jobs)
	var ce *CancelledError
	if !errors.As(err, &ce) || ce.Done != 0 || ce.Skipped != 1 {
		t.Fatalf("pre-cancelled batch: err = %v, want CancelledError{Done:0, Skipped:1}", err)
	}
}

// Cancelling mid-sweep returns a partial-aggregation error rather than a
// hang or a silently partial pooled miss rate. Serial Parallelism plus the
// Progress hook make the cancellation point deterministic: after the first
// finished replication, every remaining job must be skipped at pickup.
func TestMissRateSweepCtxCancelMidSweep(t *testing.T) {
	oldP := Parallelism
	oldProg := Progress
	defer func() { Parallelism = oldP; Progress = oldProg }()
	Parallelism = 1

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	Progress = func(done, total int) {
		if done == 1 {
			cancel()
		}
	}

	s := DefaultSpec()
	s.Horizon = 500
	s.Replications = 4
	s.Capacities = []float64{200, 1000}

	done := make(chan struct{})
	var res *MissRateResult
	var err error
	go func() {
		res, err = MissRateSweepCtx(ctx, s, []string{"lsa"})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled sweep hung")
	}
	if res != nil {
		t.Fatal("cancelled sweep returned a (partial) result")
	}
	var ce *CancelledError
	if !errors.As(err, &ce) {
		t.Fatalf("MissRateSweepCtx = %v, want *CancelledError", err)
	}
	if ce.Done != 1 || ce.Skipped != ce.Total-1 {
		t.Fatalf("partial accounting %+v, want exactly 1 job done", ce)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not unwrap to context.Canceled", err)
	}
}

// A background context must leave the sweeps bit-identical to the
// non-context entry points (same code path, no cancellation polling).
func TestMissRateSweepCtxBackgroundMatches(t *testing.T) {
	s := DefaultSpec()
	s.Horizon = 500
	s.Replications = 2
	s.Capacities = []float64{300}

	direct, err := MissRateSweep(s, []string{"lsa"})
	if err != nil {
		t.Fatal(err)
	}
	viaCtx, err := MissRateSweepCtx(context.Background(), s, []string{"lsa"})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := viaCtx.Rates["lsa"][0], direct.Rates["lsa"][0]; got != want {
		t.Fatalf("ctx sweep rate %v != direct sweep rate %v", got, want)
	}
}
