// Sensornode: a solar-powered wireless sensor node — the deployment the
// paper's introduction motivates (sensor nodes "deployed in radioactive
// surroundings" where batteries cannot be changed).
//
// The node runs three periodic real-time tasks (sampling, local
// processing, radio transmission) through four simulated days of a
// day/night solar profile with weather noise, on a small supercapacitor.
// The example compares EDF, LSA and EA-DVFS on deadline misses, energy
// head-room, and the operating points actually used.
//
//	go run ./examples/sensornode
package main

import (
	"fmt"
	"log"

	"github.com/eadvfs/eadvfs/internal/cpu"
	"github.com/eadvfs/eadvfs/internal/energy"
	"github.com/eadvfs/eadvfs/internal/experiment"
	"github.com/eadvfs/eadvfs/internal/rng"
	"github.com/eadvfs/eadvfs/internal/sim"
	"github.com/eadvfs/eadvfs/internal/storage"
	"github.com/eadvfs/eadvfs/internal/task"
)

// day is the length of one simulated day in time units.
const day = 1000.0

// solarDay builds a day/night source with stochastic clouds: a Rusu-style
// two-mode base (12 "hours" of sun) modulated by half-normal noise.
func solarDay(seed uint64) energy.Source {
	base := energy.NewTwoMode(8, 0.2, day, day/2)
	r := rng.New(seed)
	samples := make([]float64, int(4*day))
	for i := range samples {
		cloud := 0.5 + 0.5*r.HalfNormal() // mean ≈ 0.9
		if cloud > 1.5 {
			cloud = 1.5
		}
		samples[i] = base.PowerAt(float64(i)) * cloud
	}
	return energy.NewTrace("solar-day", samples)
}

func main() {
	// The node's firmware: sample fast, process at medium rate, transmit
	// in slow bursts. WCETs at full speed; deadlines = periods.
	tasks := []task.Task{
		{ID: 0, Period: 20, Deadline: 20, WCET: 2},    // sensor sampling (U=0.10)
		{ID: 1, Period: 50, Deadline: 50, WCET: 6},    // signal processing (U=0.12)
		{ID: 2, Period: 200, Deadline: 200, WCET: 30}, // radio burst (U=0.15)
	}
	u := task.SetUtilization(tasks)
	fmt.Printf("sensor node workload: U = %.2f, 3 tasks, 4 simulated days\n\n", u)

	fmt.Printf("%-10s %9s %7s %9s %10s %10s %12s\n",
		"policy", "released", "missed", "missrate", "stall", "overflow", "lowest-level")
	for _, name := range []string{"edf", "lsa", "ea-dvfs"} {
		pf, err := experiment.Policy(name)
		if err != nil {
			log.Fatal(err)
		}
		src := solarDay(7)
		cfg := &sim.Config{
			Horizon:   4 * day,
			Tasks:     tasks,
			Source:    src,
			Predictor: energy.NewSlotEWMA(day, 48, 0.3), // learns the diurnal profile
			Store:     storage.New(400, 400),            // small supercap
			CPU:       cpu.XScaleScaled(10),
			Policy:    pf(),
		}
		res, err := sim.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		// Share of execution time on the two slowest operating points —
		// how much the policy actually exploited DVFS.
		slow := 0.0
		if res.BusyTime > 0 {
			slow = (res.LevelTime[0] + res.LevelTime[1]) / res.BusyTime
		}
		fmt.Printf("%-10s %9d %7d %9.3f %10.1f %10.0f %11.0f%%\n",
			name, res.Miss.Released, res.Miss.Missed, res.Miss.Rate(),
			res.StallTime, res.Meters.Overflow, 100*slow)
	}

	fmt.Println()
	fmt.Println("EA-DVFS rides through the nights by slowing the radio bursts down;")
	fmt.Println("the full-speed policies burn the supercap early and stall before dawn.")
}
