// Quickstart: simulate the paper's default setup — five periodic tasks at
// utilization 0.4 on an XScale-class DVFS processor powered by a solar
// harvester with a 300-unit store — and compare EA-DVFS against LSA.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/eadvfs/eadvfs"
)

func main() {
	for _, policy := range []string{"lsa", "ea-dvfs"} {
		res, err := eadvfs.Run(eadvfs.Config{
			Horizon:     10000,
			Policy:      policy,
			Capacity:    300,
			Utilization: 0.4,
			NumTasks:    5,
			Seed:        1,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s  released %4d  missed %3d  miss rate %.3f  cpu energy %8.1f\n",
			res.Policy, res.Released, res.Missed, res.MissRate, res.CPUEnergy)
	}
	fmt.Println()
	fmt.Println("EA-DVFS stretches jobs onto slower operating points when the")
	fmt.Println("predicted harvest cannot sustain full speed, so the same storage")
	fmt.Println("carries more jobs through the solar troughs.")
}
