// Motivational: the paper's two worked examples, executed end to end.
//
// §2 / Figure 1 — τ1 = (0, 16, 4), τ2 = (5, 16, 1.5), EC(0) = 24,
// P_s = 0.5, P_max = 8: LSA starts τ1 at 12, drains the store exactly at
// 16 and τ2 starves; EA-DVFS runs τ1 at half speed from 4 to 12 and both
// deadlines are met.
//
// §4.3 / Figure 3 — τ1 = (0, 16, 4), τ2 = (5, 12, 1.5), EA = 32,
// f_n = 0.25·f_max: unbounded stretching (greedy) makes τ2 unschedulable
// in *time* despite ample energy; EA-DVFS's switch to full speed at the
// locked s2 = 12 finishes τ1 at 13 and rescues τ2.
//
//	go run ./examples/motivational
package main

import (
	"fmt"
	"log"

	"github.com/eadvfs/eadvfs/internal/cpu"
	"github.com/eadvfs/eadvfs/internal/energy"
	"github.com/eadvfs/eadvfs/internal/experiment"
	"github.com/eadvfs/eadvfs/internal/sim"
	"github.com/eadvfs/eadvfs/internal/storage"
	"github.com/eadvfs/eadvfs/internal/task"
	"github.com/eadvfs/eadvfs/internal/trace"
)

func main() {
	fmt.Println("=== Figure 1 (motivational example, §2) ===")
	runScenario(fig1, "lsa", "ea-dvfs")

	fmt.Println("=== Figure 3 (preventing excessive stretching, §4.3) ===")
	runScenario(fig3, "greedy-stretch", "ea-dvfs")
}

func fig1() *sim.Config {
	src := energy.NewConstant(0.5)
	return &sim.Config{
		Horizon: 25,
		Tasks: []task.Task{
			{ID: 1, Period: 1e9, Deadline: 16, WCET: 4, Offset: 0},
			{ID: 2, Period: 1e9, Deadline: 16, WCET: 1.5, Offset: 5},
		},
		Source:    src,
		Predictor: energy.NewOracle(src),
		Store:     storage.New(1e6, 24),
		CPU:       cpu.TwoSpeed(8),
	}
}

func fig3() *sim.Config {
	src := energy.NewConstant(0)
	return &sim.Config{
		Horizon: 20,
		Tasks: []task.Task{
			{ID: 1, Period: 1e9, Deadline: 16, WCET: 4, Offset: 0},
			{ID: 2, Period: 1e9, Deadline: 12, WCET: 1.5, Offset: 5},
		},
		Source:    src,
		Predictor: energy.NewOracle(src),
		Store:     storage.New(1e6, 32),
		CPU:       cpu.Fig3(),
	}
}

func runScenario(mk func() *sim.Config, policies ...string) {
	for _, name := range policies {
		pf, err := experiment.Policy(name)
		if err != nil {
			log.Fatal(err)
		}
		rec := trace.NewRecorder()
		cfg := mk()
		cfg.Policy = pf()
		cfg.Tracer = rec
		res, err := sim.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s: finished %d, missed %d, cpu energy %.1f\n",
			name, res.Miss.Finished, res.Miss.Missed, res.CPUEnergy)
		fmt.Print(rec.Gantt(cfg.Horizon, 72))
	}
	fmt.Println()
}
