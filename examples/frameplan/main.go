// Frameplan: the offline frame-based planner (Allavena & Mossé style,
// the paper's reference [4]) versus the online policies, under the
// constant-harvest assumption the offline approach requires.
//
// A frame of independent tasks is planned offline: the minimum-energy
// two-point DVFS schedule that fits the frame and keeps the battery
// non-negative. The same workload then runs through the online simulator
// under EDF, LSA and EA-DVFS. With a *constant* source the offline plan
// is the gold standard; the example then breaks the assumption (same mean
// power, but delivered in bursts) and shows why the paper insists on
// modeling source variability.
//
//	go run ./examples/frameplan
package main

import (
	"fmt"
	"log"

	"github.com/eadvfs/eadvfs/internal/cpu"
	"github.com/eadvfs/eadvfs/internal/energy"
	"github.com/eadvfs/eadvfs/internal/experiment"
	"github.com/eadvfs/eadvfs/internal/offline"
	"github.com/eadvfs/eadvfs/internal/sim"
	"github.com/eadvfs/eadvfs/internal/storage"
	"github.com/eadvfs/eadvfs/internal/task"
)

func main() {
	const (
		frame    = 100.0
		recharge = 1.2
		battery  = 60.0
	)
	wcets := []float64{6, 10, 14} // 30 work units per frame
	proc := cpu.XScaleScaled(10)

	// Offline plan under the constant-harvest assumption.
	plan, err := offline.Solve(proc, offline.FrameSpec{
		Frame: frame, WCETs: wcets,
		RechargePower: recharge, InitialEnergy: battery, Capacity: battery,
	})
	if err != nil {
		log.Fatal(err)
	}
	lb, _ := offline.ContinuousLowerBound(proc, offline.FrameSpec{
		Frame: frame, WCETs: wcets,
		RechargePower: recharge, InitialEnergy: battery, Capacity: battery,
	})
	fmt.Printf("offline plan: levels %d→%d, start %.1f, busy %.1f, energy %.2f (continuous bound %.2f)\n",
		plan.SlowLevel, plan.FastLevel, plan.Start, plan.BusyTime(), plan.Energy, lb)
	fmt.Printf("battery at frame end: %.2f of %.0f\n\n", plan.EndEnergy, battery)

	// The same workload as periodic tasks over many frames, online.
	var tasks []task.Task
	for i, w := range wcets {
		tasks = append(tasks, task.Task{ID: i, Period: frame, Deadline: frame, WCET: w})
	}

	fmt.Println("online policies, 50 frames:")
	fmt.Printf("%-10s %28s %28s\n", "", "constant source", "bursty source (same mean)")
	fmt.Printf("%-10s %9s %9s %8s %9s %9s %8s\n",
		"policy", "missed", "energy", "final", "missed", "energy", "final")
	for _, name := range []string{"edf", "lsa", "ea-dvfs"} {
		row := fmt.Sprintf("%-10s", name)
		for _, bursty := range []bool{false, true} {
			var src energy.Source
			if bursty {
				// Same mean power 1.2, delivered 6.0 one fifth of the time.
				src = energy.NewTrace("bursty", []float64{6, 0, 0, 0, 0})
			} else {
				src = energy.NewConstant(recharge)
			}
			pf, err := experiment.Policy(name)
			if err != nil {
				log.Fatal(err)
			}
			res, err := sim.Run(&sim.Config{
				Horizon:   50 * frame,
				Tasks:     tasks,
				Source:    src,
				Predictor: energy.NewEWMA(0.2),
				Store:     storage.New(battery, battery),
				CPU:       proc,
				Policy:    pf(),
			})
			if err != nil {
				log.Fatal(err)
			}
			row += fmt.Sprintf(" %9d %9.1f %8.1f", res.Miss.Missed, res.CPUEnergy, res.FinalLevel)
		}
		fmt.Println(row)
	}
	fmt.Println()
	fmt.Printf("offline energy x 50 frames would be %.1f — the bound online policies chase.\n", 50*plan.Energy)
	fmt.Println("With the source known and constant, the offline plan stretches everything")
	fmt.Println("to the frame boundary and wins outright; among the online policies only")
	fmt.Println("EA-DVFS closes part of that gap, and it keeps its advantage unchanged when")
	fmt.Println("the source turns bursty — the variability that breaks [4]'s assumptions.")
}
