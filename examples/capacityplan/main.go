// Capacityplan: storage sizing for an energy-harvesting design — the
// engineering use of the paper's Table 1. Given a workload and a harvest
// profile, find the smallest storage (battery/supercap) that keeps the
// deadline miss rate at zero under each scheduling policy, and report how
// much capacity the scheduler choice saves.
//
//	go run ./examples/capacityplan
package main

import (
	"fmt"
	"log"

	"github.com/eadvfs/eadvfs/internal/analysis"
	"github.com/eadvfs/eadvfs/internal/energy"
	"github.com/eadvfs/eadvfs/internal/experiment"
	"github.com/eadvfs/eadvfs/internal/plot"
)

func main() {
	spec := experiment.DefaultSpec()
	spec.Horizon = 5000
	spec.Replications = 5

	fmt.Println("storage sizing: smallest capacity with zero deadline misses")
	fmt.Printf("(horizon %.0f, %d task sets per utilization, XScale Pmax %.0f)\n\n",
		spec.Horizon, spec.Replications, spec.PMax)

	header := []string{"U", "Cmin LSA", "Cmin EA-DVFS", "capacity saved", "analytic bound"}
	var rows [][]string
	for _, u := range []float64{0.2, 0.3, 0.4, 0.5} {
		res, err := experiment.MinCapacity(spec, []float64{u}, []string{"lsa", "ea-dvfs"})
		if err != nil {
			log.Fatal(err)
		}
		lsa := res.Mean["lsa"][0]
		ea := res.Mean["ea-dvfs"][0]
		// Closed-form ride-through bound for comparison: the maximum
		// deficit of the solar source against the full-speed demand,
		// averaged over the same replications.
		bound := 0.0
		specU := spec
		specU.Utilization = u
		for r := 0; r < spec.Replications; r++ {
			rep, err := experiment.Replicate(specU, r)
			if err != nil {
				log.Fatal(err)
			}
			src := energy.NewSolarModel(rep.SourceSeed)
			b, err := analysis.MaxDeficit(src, analysis.DemandFullSpeed(rep.Tasks, specU.Processor()), spec.Horizon)
			if err != nil {
				log.Fatal(err)
			}
			bound += b / float64(spec.Replications)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.1f", u),
			fmt.Sprintf("%.0f", lsa),
			fmt.Sprintf("%.0f", ea),
			fmt.Sprintf("%.0f%%", 100*(1-ea/lsa)),
			fmt.Sprintf("%.0f", bound),
		})
	}
	fmt.Println(plot.Table(header, rows))
	fmt.Println("Deploying EA-DVFS instead of LSA lets the same workload run on a")
	fmt.Println("substantially smaller energy store at low utilization — the paper's")
	fmt.Println("Table 1 observation, turned into a sizing tool.")
}
