package eadvfs

import (
	"encoding/json"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/eadvfs/eadvfs/internal/obs"
)

// A run manifest must reproduce its run bit-identically: serializing the
// config into a manifest, writing it to disk, reading it back, decoding
// and re-running yields byte-for-byte the same result — the contract
// behind `easim -replay`.
func TestManifestReplayIsBitIdentical(t *testing.T) {
	cfg := Config{
		Horizon:     500,
		Policy:      "ea-dvfs",
		Utilization: 0.6,
		Seed:        7,
		NumTasks:    4,
	}
	first, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	m, err := obs.NewManifest("easim", cfg.Policy, map[string]uint64{"seed": cfg.Seed}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}

	back, err := obs.ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	var replayCfg Config
	if err := back.DecodeConfig(&replayCfg); err != nil {
		t.Fatal(err)
	}
	second, err := Run(replayCfg)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(first, second) {
		t.Fatalf("replayed run differs:\nfirst:  %+v\nsecond: %+v", first, second)
	}
	// Bit-identical means the serialized artifacts match too.
	b1, _ := json.Marshal(first)
	b2, _ := json.Marshal(second)
	if string(b1) != string(b2) {
		t.Fatalf("serialized results differ:\n%s\n%s", b1, b2)
	}
}

// The facade's Probe field reaches the engine: a recorder attached through
// the public Config observes the run's events and decisions, and the Probe
// is excluded from config serialization (a manifest identifies the
// simulation, not its observers).
func TestFacadeProbe(t *testing.T) {
	rec := obs.NewRecorder()
	cfg := Config{Horizon: 300, Seed: 3, Probe: rec}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	arrivals := 0
	for _, ev := range rec.Events() {
		if ev.Kind == obs.KindArrival {
			arrivals++
		}
	}
	if arrivals != res.Released {
		t.Fatalf("probe saw %d arrivals, result says %d released", arrivals, res.Released)
	}
	if len(rec.Decisions()) == 0 {
		t.Fatal("no decision audits reached the probe")
	}

	raw, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var asMap map[string]any
	if err := json.Unmarshal(raw, &asMap); err != nil {
		t.Fatal(err)
	}
	if _, ok := asMap["Probe"]; ok {
		t.Fatal("Probe must not serialize into config JSON")
	}
}
