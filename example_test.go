package eadvfs_test

import (
	"fmt"
	"log"

	"github.com/eadvfs/eadvfs"
)

// Run the paper's default setup — a random five-task workload at
// utilization 0.4 on the solar-harvesting XScale platform — under EA-DVFS.
func ExampleRun() {
	res, err := eadvfs.Run(eadvfs.Config{
		Horizon:     1000,
		Policy:      "ea-dvfs",
		Capacity:    300,
		Utilization: 0.4,
		Seed:        1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Policy, res.Released > 0, res.MissRate <= 1)
	// Output: ea-dvfs true true
}

// The paper's Figure 1 example through the public API: LSA starves τ2.
func ExampleRun_explicitTasks() {
	harvest := 0.5
	initial := 24.0
	res, err := eadvfs.Run(eadvfs.Config{
		Horizon:         25,
		Policy:          "lsa",
		Predictor:       "oracle",
		Capacity:        1e6,
		InitialEnergy:   &initial,
		PMax:            8,
		ConstantHarvest: &harvest,
		Tasks: []eadvfs.Task{
			{Period: 1e9, Deadline: 16, WCET: 4},
			{Period: 1e9, Deadline: 16, WCET: 1.5, Offset: 5},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("finished %d, missed %d\n", res.Finished, res.Missed)
	// Output: finished 1, missed 1
}

func ExamplePolicies() {
	for _, p := range eadvfs.Policies() {
		fmt.Println(p)
	}
	// Output:
	// ea-dvfs
	// ea-dvfs-dynamic
	// lsa
	// edf
	// static-dvfs
	// greedy-stretch
	// ea-dvfs-reclaim
	// lsa-reclaim
}
