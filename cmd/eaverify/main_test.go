package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/eadvfs/eadvfs/internal/registry"
	"github.com/eadvfs/eadvfs/internal/verify"
)

// TestCleanSweep: a small sweep of healthy seeds exits 0 and reports the
// count it checked — n configurations per registered policy, since the
// sweep auto-enumerates the registry.
func TestCleanSweep(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-n", "5", "-seed", "1"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s stdout: %s", code, errb.String(), out.String())
	}
	want := fmt.Sprintf("OK: %d configuration(s)", 5*len(registry.PolicyNames()))
	if !strings.Contains(out.String(), want) {
		t.Fatalf("output missing %q: %s", want, out.String())
	}
}

// TestSweepCoversEveryRegisteredPolicy: the sweep header must name every
// registered policy — the smoke-level proof that auto-enumeration is
// wired to the registry rather than a hardcoded list.
func TestSweepCoversEveryRegisteredPolicy(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-quick", "-n", "1"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s stdout: %s", code, errb.String(), out.String())
	}
	names := registry.PolicyNames()
	if len(names) == 0 {
		t.Fatal("registry enumerates no policies")
	}
	for _, name := range names {
		if !strings.Contains(out.String(), name) {
			t.Errorf("sweep output does not mention registered policy %q:\n%s", name, out.String())
		}
	}
	// -quick pins the per-policy count, so the total is len(names)*25.
	want := fmt.Sprintf("OK: %d configuration(s)", 25*len(names))
	if !strings.Contains(out.String(), want) {
		t.Fatalf("output missing %q: %s", want, out.String())
	}
}

// TestInjectedDivergenceWorkflow: with a predictor bias injected into the
// optimized side, the binary must detect the divergence, minimize the
// spec, dump both audit logs side by side, write the repro file, and exit
// 1 — the full debugging workflow from the README.
func TestInjectedDivergenceWorkflow(t *testing.T) {
	reproPath := filepath.Join(t.TempDir(), "repro.json")
	var out, errb bytes.Buffer
	code := run([]string{
		"-n", "1", "-seed", "42",
		"-inject-bias", "1e-6",
		"-spec-out", reproPath,
	}, &out, &errb)
	if code != 1 {
		t.Fatalf("want exit 1 on divergence, got %d\nstdout: %s\nstderr: %s",
			code, out.String(), errb.String())
	}
	text := out.String()
	for _, want := range []string{"DIVERGENCE at seed 42", "minimized to", ">>>", "opt:", "ref:", "spec written to"} {
		if !strings.Contains(text, want) {
			t.Fatalf("output missing %q:\n%s", want, text)
		}
	}

	// The written repro must be a valid spec that still diverges when
	// replayed through -spec.
	blob, err := os.ReadFile(reproPath)
	if err != nil {
		t.Fatal(err)
	}
	var spec verify.Spec
	if err := json.Unmarshal(blob, &spec); err != nil {
		t.Fatalf("repro file is not a valid spec: %v", err)
	}
	if spec.InjectBias == 0 {
		t.Fatal("repro spec lost the injected bias — replay would be clean")
	}
	out.Reset()
	errb.Reset()
	code = run([]string{"-spec", reproPath, "-no-minimize"}, &out, &errb)
	if code != 1 {
		t.Fatalf("replayed repro did not diverge: exit %d\n%s", code, out.String())
	}
}
