// Command eaverify cross-checks the optimized simulation engine
// (internal/sim) against the naive reference engine (internal/refimpl) on
// randomly generated configurations, and turns any divergence into a
// small reproducible artifact: the minimized spec as JSON plus both
// decision-audit logs side by side.
//
// Usage:
//
//	eaverify [-n 200] [-seed 1] [-quick] [-spec spec.json] [-no-minimize]
//	         [-spec-out min.json]
//	         [-inject-bias 0] [-inject-after 0] [-version]
//
// Without -spec, eaverify auto-enumerates the scenario registry
// (internal/registry) and sweeps n random configurations per registered
// policy starting at the given seed — the same generator the
// `go test ./internal/verify` sweep uses, so a seed printed by a failing
// test reproduces here verbatim. -quick caps the sweep at a CI-friendly
// size. With -spec, it replays one configuration from a JSON file (the
// format it writes with -spec-out).
//
// -inject-bias perturbs the optimized side's energy predictions by the
// given amount (from -inject-after onward), deliberately fabricating a
// divergence; use it to watch the minimize-and-dump workflow end to end.
//
// Exit status: 0 when every configuration matched bit for bit, 1 on
// divergence, 2 on usage errors.
//
// Example:
//
//	eaverify -n 500
//	eaverify -seed 1337 -n 1 -spec-out repro.json
//	eaverify -spec repro.json
//	eaverify -n 1 -inject-bias 1e-9
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/eadvfs/eadvfs/internal/buildinfo"
	"github.com/eadvfs/eadvfs/internal/registry"
	"github.com/eadvfs/eadvfs/internal/verify"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment made explicit, so the divergence
// workflow is testable without spawning a process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("eaverify", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		n           = fs.Int("n", 200, "number of random configurations to sweep per registered policy")
		quick       = fs.Bool("quick", false, "CI-sized sweep (forces -n 25)")
		seed        = fs.Uint64("seed", 1, "first generator seed of the sweep")
		specPath    = fs.String("spec", "", "replay one configuration from a JSON spec file instead of sweeping")
		specOut     = fs.String("spec-out", "", "write the (minimized, if diverging) spec to this JSON file")
		noMinimize  = fs.Bool("no-minimize", false, "report the first divergence without shrinking it")
		injectBias  = fs.Float64("inject-bias", 0, "perturb the optimized side's energy predictions by this amount (testing the harness itself)")
		injectAfter = fs.Float64("inject-after", 0, "apply -inject-bias only to prediction windows starting at or after this time")
		version     = fs.Bool("version", false, "print build information and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		fmt.Fprintln(stdout, buildinfo.Line("eaverify"))
		return 0
	}

	var specs []*verify.Spec
	if *specPath != "" {
		s, err := readSpec(*specPath)
		if err != nil {
			fmt.Fprintf(stderr, "eaverify: %v\n", err)
			return 2
		}
		specs = append(specs, s)
	} else {
		// Auto-enumerate the registry: every registered policy — built-in
		// or linked in from an out-of-tree scenario package — is swept
		// against the reference engine with the same per-seed scenario
		// material, so a new registration cannot land uncovered.
		perPolicy := *n
		if *quick {
			perPolicy = 25
		}
		policies := registry.PolicyNames()
		fmt.Fprintf(stdout, "sweeping %d registered policies: %s\n",
			len(policies), strings.Join(policies, ", "))
		for i := 0; i < perPolicy; i++ {
			for _, policy := range policies {
				specs = append(specs, verify.RandomSpecForPolicy(*seed+uint64(i), policy))
			}
		}
	}

	checked := 0
	for _, spec := range specs {
		if *injectBias != 0 {
			spec.InjectBias = *injectBias
			spec.InjectAfter = *injectAfter
		}
		d, err := verify.Check(spec)
		if err != nil {
			fmt.Fprintf(stderr, "eaverify: seed %d: invalid spec: %v\n", spec.Seed, err)
			return 2
		}
		checked++
		if !d.Diverged() {
			continue
		}

		fmt.Fprintf(stdout, "DIVERGENCE at seed %d (policy=%s predictor=%s source=%s)\n",
			spec.Seed, spec.Policy, spec.Predictor, spec.Source.Kind)
		final := spec
		if !*noMinimize {
			min, md, err := verify.Minimize(spec)
			if err == nil && md.Diverged() {
				final, d = min, md
				fmt.Fprintf(stdout, "minimized to %d task(s), horizon %v, source=%s, predictor=%s\n",
					len(min.Tasks), min.Horizon, min.Source.Kind, min.Predictor)
			}
		}
		verify.SideBySide(stdout, d)
		blob, err := json.MarshalIndent(final, "", "  ")
		if err == nil {
			fmt.Fprintf(stdout, "spec:\n%s\n", blob)
			if *specOut != "" {
				if werr := os.WriteFile(*specOut, append(blob, '\n'), 0o644); werr != nil {
					fmt.Fprintf(stderr, "eaverify: writing %s: %v\n", *specOut, werr)
				} else {
					fmt.Fprintf(stdout, "spec written to %s\n", *specOut)
				}
			}
		}
		return 1
	}
	fmt.Fprintf(stdout, "OK: %d configuration(s) bit-identical across optimized and reference engines\n", checked)
	if *specOut != "" && len(specs) == 1 {
		blob, err := json.MarshalIndent(specs[0], "", "  ")
		if err == nil {
			if werr := os.WriteFile(*specOut, append(blob, '\n'), 0o644); werr != nil {
				fmt.Fprintf(stderr, "eaverify: writing %s: %v\n", *specOut, werr)
			}
		}
	}
	return 0
}

func readSpec(path string) (*verify.Spec, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s verify.Spec
	if err := json.Unmarshal(blob, &s); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return &s, nil
}
