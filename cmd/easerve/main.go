// Command easerve serves simulations over HTTP: the same simulation and
// sweep specifications the easim/eaexp CLIs consume, posted as JSON and
// executed on a bounded worker pool with a digest-keyed single-flight
// result cache (internal/service). Identical requests share one engine
// run; overload sheds with 429 rather than queuing without bound; SIGTERM
// drains in-flight work before exiting.
//
// Usage:
//
//	easerve [-addr :8080] [-workers N] [-queue 64] [-cache 4096]
//	        [-cache-bytes 67108864] [-max-body 1048576] [-timeout 120s]
//	        [-retry-after 1s] [-drain-timeout 30s]
//	        [-flight-spans 256] [-flight-decisions 256] [-version]
//
// Endpoints:
//
//	POST /v1/sim       body = simulation config (easim's); ?events=1
//	                   streams the JSONL event log instead of the result
//	POST /v1/sweep     body = {"kind":"missrate"|"remaining",
//	                   "spec":{...},"policies":[...]}
//	GET  /metrics      Prometheus text exposition
//	GET  /healthz      200 ok, 503 while draining
//	GET  /debug/flight flight recorder: recent spans + decision audits
//	GET  /version      build identity JSON
//
// Requests carrying a W3C traceparent header are traced: the worker's
// admission/cache/engine spans return in the X-Trace-Spans response
// header (the body stays byte-identical) and land in the flight
// recorder. SIGQUIT dumps the flight recorder to stderr as JSON and
// keeps serving.
//
// Example:
//
//	easerve -addr :8080 &
//	curl -s -X POST localhost:8080/v1/sim \
//	     -d '{"Policy":"ea-dvfs","Capacity":300,"Horizon":10000}'
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/eadvfs/eadvfs/internal/buildinfo"
	"github.com/eadvfs/eadvfs/internal/service"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		queue        = flag.Int("queue", 64, "requests allowed to wait for a worker before shedding 429")
		cacheSize    = flag.Int("cache", 4096, "result-cache entries retained (LRU eviction)")
		cacheBytes   = flag.Int64("cache-bytes", 64<<20, "result-cache byte budget (LRU eviction)")
		maxBody      = flag.Int64("max-body", 1<<20, "largest accepted request body in bytes (413 beyond)")
		timeout      = flag.Duration("timeout", 120*time.Second, "per-request compute budget")
		retryAfter   = flag.Duration("retry-after", time.Second, "Retry-After hint on 429/503 responses")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "grace period for in-flight work on SIGTERM")
		flightSpans  = flag.Int("flight-spans", 0, "flight-recorder span ring size (0 = default 256, negative disables)")
		flightDecs   = flag.Int("flight-decisions", 0, "flight-recorder decision ring size (0 = default 256, negative disables)")
		version      = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Line("easerve"))
		return
	}
	if err := run(*addr, *drainTimeout, service.Options{
		Workers:         *workers,
		Queue:           *queue,
		CacheEntries:    *cacheSize,
		CacheBytes:      *cacheBytes,
		MaxBodyBytes:    *maxBody,
		Timeout:         *timeout,
		RetryAfter:      *retryAfter,
		FlightSpans:     *flightSpans,
		FlightDecisions: *flightDecs,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "easerve:", err)
		os.Exit(1)
	}
}

func run(addr string, drainTimeout time.Duration, opts service.Options) error {
	svc := service.New(opts)
	srv := &http.Server{
		Addr:    addr,
		Handler: svc.Handler(),
		// Defend the listener; per-request compute budgets live in the
		// service's Timeout, which also bounds response write time for
		// event streams, so no WriteTimeout here.
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "easerve: %s listening on %s\n", buildinfo.Line("easerve"), addr)
		errc <- srv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)

	// SIGQUIT is the black-box probe: dump the flight recorder (recent
	// spans + decision audits) to stderr and keep serving — the in-process
	// twin of GET /debug/flight for when the HTTP plane is wedged.
	quitc := make(chan os.Signal, 1)
	signal.Notify(quitc, syscall.SIGQUIT)
	go func() {
		for range quitc {
			dumpFlight(svc)
		}
	}()

	select {
	case err := <-errc:
		return err // listener died before any signal
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "easerve: %s received, draining (grace %s)\n", sig, drainTimeout)
	}

	// Graceful drain: stop admitting compute work and flip /healthz first,
	// then let http.Server.Shutdown wait for in-flight requests.
	svc.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain incomplete after %s: %w", drainTimeout, err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(os.Stderr, "easerve: drained, exiting")
	return nil
}

// dumpFlight writes the flight recorder's snapshot to stderr as one JSON
// document framed by marker lines (greppable in a log stream).
func dumpFlight(svc *service.Server) {
	dump, ok := svc.FlightSnapshot()
	if !ok {
		fmt.Fprintln(os.Stderr, "easerve: flight recorder disabled")
		return
	}
	fmt.Fprintf(os.Stderr, "easerve: flight recorder dump (%d spans, %d decisions)\n",
		len(dump.Spans), len(dump.Decisions))
	enc := json.NewEncoder(os.Stderr)
	enc.SetIndent("", "  ")
	if err := enc.Encode(dump); err != nil {
		fmt.Fprintln(os.Stderr, "easerve: flight dump failed:", err)
	}
	fmt.Fprintln(os.Stderr, "easerve: flight recorder dump end")
}
