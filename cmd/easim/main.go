// Command easim runs a single energy-harvesting real-time scheduling
// simulation and prints a summary.
//
// Usage:
//
//	easim [-policy ea-dvfs] [-u 0.4] [-capacity 1000] [-horizon 10000]
//	      [-tasks 5] [-seed 1] [-predictor ewma] [-pmax 10] [-energy]
//	      [-fault-intensity 0] [-fault-seed 1] [-check] [-analyze] [-json]
//
// Example:
//
//	easim -policy lsa -u 0.4 -capacity 300
//	easim -policy ea-dvfs -u 0.4 -capacity 300 -analyze
//	easim -policy ea-dvfs -capacity 300 -fault-intensity 0.5 -check
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/eadvfs/eadvfs"
	"github.com/eadvfs/eadvfs/internal/analysis"
	"github.com/eadvfs/eadvfs/internal/energy"
	"github.com/eadvfs/eadvfs/internal/experiment"
	"github.com/eadvfs/eadvfs/internal/profiling"
)

func main() {
	var (
		policy    = flag.String("policy", "ea-dvfs", "scheduling policy: ea-dvfs, ea-dvfs-dynamic, lsa, edf, static-dvfs, greedy-stretch")
		predictor = flag.String("predictor", "ewma", "harvest predictor: ewma, oracle, slot-ewma, wcma, moving-average, last-value, zero")
		u         = flag.Float64("u", 0.4, "target utilization of the generated task set")
		numTasks  = flag.Int("tasks", 5, "number of periodic tasks")
		capacity  = flag.Float64("capacity", 1000, "energy storage capacity")
		horizon   = flag.Float64("horizon", 10000, "simulated time units")
		seed      = flag.Uint64("seed", 1, "master seed (workload + solar sample path)")
		pmax      = flag.Float64("pmax", 10, "processor maximum power (XScale table scaled)")
		energyF   = flag.Bool("energy", false, "print the stored-energy trace statistics")
		analyze   = flag.Bool("analyze", false, "print the analytic feasibility report for the workload")
		jsonF     = flag.Bool("json", false, "emit the result as JSON")
		faultX     = flag.Float64("fault-intensity", 0, "mixed-fault model intensity in (0, 1]; 0 disables")
		faultSeed  = flag.Uint64("fault-seed", 1, "fault schedule seed")
		check      = flag.Bool("check", false, "arm the runtime invariant checker")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memprofile = flag.String("memprofile", "", "write an allocation profile taken after the run to this file")
	)
	flag.Parse()

	stopCPU, err := profiling.StartCPU(*cpuprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "easim:", err)
		os.Exit(1)
	}
	defer stopCPU()
	defer func() {
		if err := profiling.WriteHeap(*memprofile); err != nil {
			fmt.Fprintln(os.Stderr, "easim:", err)
		}
	}()

	res, err := eadvfs.Run(eadvfs.Config{
		Horizon:         *horizon,
		Policy:          *policy,
		Predictor:       *predictor,
		Capacity:        *capacity,
		PMax:            *pmax,
		NumTasks:        *numTasks,
		Utilization:     *u,
		Seed:            *seed,
		RecordEnergy:    *energyF,
		FaultIntensity:  *faultX,
		FaultSeed:       *faultSeed,
		CheckInvariants: *check,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "easim:", err)
		os.Exit(1)
	}

	if *jsonF {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintln(os.Stderr, "easim:", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("policy            %s\n", res.Policy)
	fmt.Printf("jobs released     %d\n", res.Released)
	fmt.Printf("jobs finished     %d\n", res.Finished)
	fmt.Printf("deadline misses   %d\n", res.Missed)
	fmt.Printf("miss rate         %.4f\n", res.MissRate)
	fmt.Printf("busy / idle / stall  %.1f / %.1f / %.1f\n", res.BusyTime, res.IdleTime, res.StallTime)
	fmt.Printf("cpu energy        %.1f\n", res.CPUEnergy)
	fmt.Printf("harvested         %.1f (overflowed %.1f)\n", res.HarvestedEnergy, res.OverflowEnergy)
	fmt.Printf("final stored      %.1f / %.0f\n", res.FinalStored, *capacity)
	fmt.Printf("level residency   ")
	for i, lt := range res.LevelTime {
		if i > 0 {
			fmt.Printf(" / ")
		}
		fmt.Printf("%.1f", lt)
	}
	fmt.Println()

	if d := res.Degradation; d != (eadvfs.Degradation{}) {
		fmt.Printf("degradation       dropout %.0f, spike %.0f (%.1f lost), stuck %.0f (%d clamps), blackout %.0f (%d stale)\n",
			d.SourceFaultTime, d.LeakSpikeTime, d.LeakSpikeEnergy,
			d.DVFSStuckTime, d.DVFSClamps, d.BlackoutTime, d.StaleForecasts)
		fmt.Printf("                  fade %.1f lost, %d overruns (+%.1f work)\n",
			d.FadeEnergy, d.Overruns, d.OverrunWork)
	}

	if *energyF && len(res.StoredEnergy) > 0 {
		minV, maxV, sum := res.StoredEnergy[0], res.StoredEnergy[0], 0.0
		for _, v := range res.StoredEnergy {
			if v < minV {
				minV = v
			}
			if v > maxV {
				maxV = v
			}
			sum += v
		}
		fmt.Printf("stored energy     min %.1f  mean %.1f  max %.1f\n",
			minV, sum/float64(len(res.StoredEnergy)), maxV)
	}

	if *analyze {
		spec := experiment.DefaultSpec()
		spec.Utilization = *u
		spec.NumTasks = *numTasks
		spec.Seed = *seed
		spec.PMax = *pmax
		rep, err := experiment.Replicate(spec, 0)
		if err != nil {
			fmt.Fprintln(os.Stderr, "easim:", err)
			os.Exit(1)
		}
		src := energy.NewSolarModel(rep.SourceSeed)
		report, err := analysis.Analyze(rep.Tasks, spec.Processor(), src, *horizon)
		if err != nil {
			fmt.Fprintln(os.Stderr, "easim:", err)
			os.Exit(1)
		}
		fmt.Println()
		fmt.Printf("analysis: U = %.3f, density = %.3f, EDF schedulable = %v\n",
			report.Utilization, report.Density, report.EDFSchedulable)
		fmt.Printf("  full-speed demand   %.2f vs mean supply %.2f (margin %+.0f%%, miss floor %.2f)\n",
			report.FullSpeed.Demand, report.FullSpeed.MeanSupply,
			100*report.FullSpeed.Margin, report.FullSpeed.MissFloor)
		fmt.Printf("  min-feasible demand %.2f (margin %+.0f%%, miss floor %.2f)\n",
			report.MinFeasible.Demand, 100*report.MinFeasible.Margin, report.MinFeasible.MissFloor)
		fmt.Printf("  ride-through bound  %.0f (full speed) / %.0f (stretched)\n",
			report.RideThroughFull, report.RideThroughMin)
	}
}
