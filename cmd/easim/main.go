// Command easim runs a single energy-harvesting real-time scheduling
// simulation and prints a summary.
//
// Usage:
//
//	easim [-policy ea-dvfs] [-predictor ewma] [-u 0.4] [-tasks 5]
//	      [-capacity 1000] [-horizon 10000] [-seed 1] [-pmax 10]
//	      [-fault-intensity 0] [-fault-seed 1] [-check] [-energy]
//	      [-analyze] [-json]
//	      [-events] [-events-out events.jsonl] [-metrics-out metrics.prom]
//	      [-manifest-out manifest.json] [-replay manifest.json]
//	      [-validate-events events.jsonl]
//	      [-cpuprofile cpu.out] [-memprofile mem.out] [-version]
//
// Observability: -events streams the run's structured event log (JSONL
// schema v1, internal/obs) to stdout instead of the summary; -events-out
// writes the same stream to a file alongside the normal output.
// -metrics-out writes a Prometheus text-format snapshot of the run's
// metrics, -manifest-out a run manifest (build, seeds, config + digest)
// that -replay feeds back to reproduce the run bit-identically.
// -validate-events checks a JSONL stream against the schema and exits.
//
// Example:
//
//	easim -policy lsa -u 0.4 -capacity 300
//	easim -policy ea-dvfs -u 0.4 -capacity 300 -analyze
//	easim -policy ea-dvfs -capacity 300 -fault-intensity 0.5 -check
//	easim -json -events-out ev.jsonl -manifest-out man.json > run.json
//	easim -replay man.json -json | diff run.json -
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/eadvfs/eadvfs"
	"github.com/eadvfs/eadvfs/internal/analysis"
	"github.com/eadvfs/eadvfs/internal/buildinfo"
	"github.com/eadvfs/eadvfs/internal/energy"
	"github.com/eadvfs/eadvfs/internal/experiment"
	"github.com/eadvfs/eadvfs/internal/obs"
	"github.com/eadvfs/eadvfs/internal/profiling"
)

func main() {
	var (
		policy     = flag.String("policy", "ea-dvfs", "scheduling policy: "+strings.Join(eadvfs.Policies(), ", "))
		predictor  = flag.String("predictor", "ewma", "harvest predictor: "+strings.Join(eadvfs.Predictors(), ", "))
		u          = flag.Float64("u", 0.4, "target utilization of the generated task set")
		numTasks   = flag.Int("tasks", 5, "number of periodic tasks")
		capacity   = flag.Float64("capacity", 1000, "energy storage capacity")
		horizon    = flag.Float64("horizon", 10000, "simulated time units")
		seed       = flag.Uint64("seed", 1, "master seed (workload + solar sample path)")
		pmax       = flag.Float64("pmax", 10, "processor maximum power (XScale table scaled)")
		energyF    = flag.Bool("energy", false, "print the stored-energy trace statistics")
		analyze    = flag.Bool("analyze", false, "print the analytic feasibility report for the workload")
		jsonF      = flag.Bool("json", false, "emit the result as JSON")
		faultX     = flag.Float64("fault-intensity", 0, "mixed-fault model intensity in (0, 1]; 0 disables")
		faultSeed  = flag.Uint64("fault-seed", 1, "fault schedule seed")
		check      = flag.Bool("check", false, "arm the runtime invariant checker")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memprofile = flag.String("memprofile", "", "write an allocation profile taken after the run to this file")

		events      = flag.Bool("events", false, "stream the structured event log (JSONL schema v1) to stdout instead of the summary")
		eventsOut   = flag.String("events-out", "", "write the structured event log to this file")
		metricsOut  = flag.String("metrics-out", "", "write a Prometheus text-format metrics snapshot to this file")
		manifestOut = flag.String("manifest-out", "", "write the run manifest (build, seeds, config digest) to this file")
		replay      = flag.String("replay", "", "re-run the configuration embedded in this manifest instead of the flags")
		validate    = flag.String("validate-events", "", "validate a JSONL event stream against the schema and exit")
		version     = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.Line("easim"))
		return
	}
	if *validate != "" {
		validateEvents(*validate)
		return
	}
	if *events && *jsonF {
		fatal(fmt.Errorf("-events and -json both claim stdout; use -events-out with -json"))
	}
	if *events && *eventsOut != "" {
		fatal(fmt.Errorf("-events and -events-out are mutually exclusive"))
	}

	stopCPU, err := profiling.StartCPU(*cpuprofile)
	if err != nil {
		fatal(err)
	}
	defer stopCPU()
	defer func() {
		if err := profiling.WriteHeap(*memprofile); err != nil {
			fmt.Fprintln(os.Stderr, "easim:", err)
		}
	}()

	var cfg eadvfs.Config
	if *replay != "" {
		m, err := obs.ReadManifest(*replay)
		if err != nil {
			fatal(err)
		}
		if m.Tool != "easim" {
			fatal(fmt.Errorf("manifest %s was written by %q, not easim", *replay, m.Tool))
		}
		if err := m.DecodeConfig(&cfg); err != nil {
			fatal(err)
		}
	} else {
		cfg = eadvfs.Config{
			Horizon:         *horizon,
			Policy:          *policy,
			Predictor:       *predictor,
			Capacity:        *capacity,
			PMax:            *pmax,
			NumTasks:        *numTasks,
			Utilization:     *u,
			Seed:            *seed,
			RecordEnergy:    *energyF,
			FaultIntensity:  *faultX,
			FaultSeed:       *faultSeed,
			CheckInvariants: *check,
		}
	}

	// Observability sinks. The probes compose through obs.Multi; a run
	// without any stays probe-free (nil) and pays nothing.
	var probes []obs.Probe
	var eventsW *obs.JSONLWriter
	switch {
	case *events:
		eventsW = obs.NewJSONLWriter(os.Stdout)
	case *eventsOut != "":
		f, err := os.Create(*eventsOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		eventsW = obs.NewJSONLWriter(f)
	}
	if eventsW != nil {
		probes = append(probes, eventsW)
	}
	var reg *obs.Registry
	if *metricsOut != "" {
		reg = obs.NewRegistry()
		probes = append(probes, obs.NewMetricsProbe(reg))
	}
	cfg.Probe = obs.Multi(probes...)

	if *manifestOut != "" {
		m, err := obs.NewManifest("easim", cfg.Policy,
			map[string]uint64{"seed": cfg.Seed, "fault-seed": cfg.FaultSeed}, cfg)
		if err != nil {
			fatal(err)
		}
		if err := m.WriteFile(*manifestOut); err != nil {
			fatal(err)
		}
	}

	res, err := eadvfs.Run(cfg)
	if err != nil {
		fatal(err)
	}

	if eventsW != nil {
		if err := eventsW.Flush(); err != nil {
			fatal(err)
		}
	}
	if reg != nil {
		recordRunMetrics(reg, res)
		f, err := os.Create(*metricsOut)
		if err != nil {
			fatal(err)
		}
		if err := reg.WritePrometheus(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}

	switch {
	case *events:
		// The event stream owns stdout; the summary is suppressed.
	case *jsonF:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatal(err)
		}
	default:
		printSummary(res, cfg.Capacity, *energyF)
	}

	if *analyze && !*events {
		printAnalysis(cfg, *horizon)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "easim:", err)
	os.Exit(1)
}

// validateEvents runs the schema checker over a JSONL stream and reports
// the verdict (exit 0 valid, 1 not).
func validateEvents(path string) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	n, err := obs.CheckJSONL(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "easim: %s: %v (after %d valid lines)\n", path, err, n)
		os.Exit(1)
	}
	fmt.Printf("%s: %d lines, schema v%d OK\n", path, n, obs.JSONLSchemaVersion)
}

// recordRunMetrics tallies the run's aggregate outcome into the registry,
// using the same eadvfs_run_* series the experiment harness exports
// (experiment.RecordRunMetrics), so dashboards work on either.
func recordRunMetrics(reg *obs.Registry, res *eadvfs.Result) {
	reg.Counter("eadvfs_runs_total", "completed simulation runs").Inc()
	const jobsHelp = "jobs by outcome across runs"
	reg.Counter(obs.Labeled("eadvfs_run_jobs_total", "outcome", "released"), jobsHelp).Add(float64(res.Released))
	reg.Counter(obs.Labeled("eadvfs_run_jobs_total", "outcome", "finished"), jobsHelp).Add(float64(res.Finished))
	reg.Counter(obs.Labeled("eadvfs_run_jobs_total", "outcome", "missed"), jobsHelp).Add(float64(res.Missed))
	const timeHelp = "simulated time by processor mode across runs"
	reg.Counter(obs.Labeled("eadvfs_run_time_total", "mode", "busy"), timeHelp).Add(res.BusyTime)
	reg.Counter(obs.Labeled("eadvfs_run_time_total", "mode", "idle"), timeHelp).Add(res.IdleTime)
	reg.Counter(obs.Labeled("eadvfs_run_time_total", "mode", "stall"), timeHelp).Add(res.StallTime)
	reg.Counter("eadvfs_run_cpu_energy_total", "energy delivered to the processor across runs").Add(res.CPUEnergy)
	reg.Summary("eadvfs_run_miss_rate", "per-run deadline miss rate").Observe(res.MissRate)
	if res.Degradation != (eadvfs.Degradation{}) {
		reg.Counter("eadvfs_run_degraded_total", "runs with any fault-induced degradation").Inc()
	}
}

func printSummary(res *eadvfs.Result, capacity float64, energyF bool) {
	fmt.Printf("policy            %s\n", res.Policy)
	fmt.Printf("jobs released     %d\n", res.Released)
	fmt.Printf("jobs finished     %d\n", res.Finished)
	fmt.Printf("deadline misses   %d\n", res.Missed)
	fmt.Printf("miss rate         %.4f\n", res.MissRate)
	fmt.Printf("busy / idle / stall  %.1f / %.1f / %.1f\n", res.BusyTime, res.IdleTime, res.StallTime)
	fmt.Printf("cpu energy        %.1f\n", res.CPUEnergy)
	fmt.Printf("harvested         %.1f (overflowed %.1f)\n", res.HarvestedEnergy, res.OverflowEnergy)
	fmt.Printf("final stored      %.1f / %.0f\n", res.FinalStored, capacity)
	fmt.Printf("level residency   ")
	for i, lt := range res.LevelTime {
		if i > 0 {
			fmt.Printf(" / ")
		}
		fmt.Printf("%.1f", lt)
	}
	fmt.Println()

	if d := res.Degradation; d != (eadvfs.Degradation{}) {
		fmt.Printf("degradation       dropout %.0f, spike %.0f (%.1f lost), stuck %.0f (%d clamps), blackout %.0f (%d stale)\n",
			d.SourceFaultTime, d.LeakSpikeTime, d.LeakSpikeEnergy,
			d.DVFSStuckTime, d.DVFSClamps, d.BlackoutTime, d.StaleForecasts)
		fmt.Printf("                  fade %.1f lost, %d overruns (+%.1f work)\n",
			d.FadeEnergy, d.Overruns, d.OverrunWork)
	}

	if energyF && len(res.StoredEnergy) > 0 {
		minV, maxV, sum := res.StoredEnergy[0], res.StoredEnergy[0], 0.0
		for _, v := range res.StoredEnergy {
			if v < minV {
				minV = v
			}
			if v > maxV {
				maxV = v
			}
			sum += v
		}
		fmt.Printf("stored energy     min %.1f  mean %.1f  max %.1f\n",
			minV, sum/float64(len(res.StoredEnergy)), maxV)
	}
}

func printAnalysis(cfg eadvfs.Config, horizon float64) {
	spec := experiment.DefaultSpec()
	spec.Utilization = cfg.Utilization
	spec.NumTasks = cfg.NumTasks
	spec.Seed = cfg.Seed
	spec.PMax = cfg.PMax
	rep, err := experiment.Replicate(spec, 0)
	if err != nil {
		fatal(err)
	}
	src := energy.NewSolarModel(rep.SourceSeed)
	report, err := analysis.Analyze(rep.Tasks, spec.Processor(), src, horizon)
	if err != nil {
		fatal(err)
	}
	fmt.Println()
	fmt.Printf("analysis: U = %.3f, density = %.3f, EDF schedulable = %v\n",
		report.Utilization, report.Density, report.EDFSchedulable)
	fmt.Printf("  full-speed demand   %.2f vs mean supply %.2f (margin %+.0f%%, miss floor %.2f)\n",
		report.FullSpeed.Demand, report.FullSpeed.MeanSupply,
		100*report.FullSpeed.Margin, report.FullSpeed.MissFloor)
	fmt.Printf("  min-feasible demand %.2f (margin %+.0f%%, miss floor %.2f)\n",
		report.MinFeasible.Demand, 100*report.MinFeasible.Margin, report.MinFeasible.MissFloor)
	fmt.Printf("  ride-through bound  %.0f (full speed) / %.0f (stretched)\n",
		report.RideThroughFull, report.RideThroughMin)
}
