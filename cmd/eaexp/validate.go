package main

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"github.com/eadvfs/eadvfs/internal/obs"
)

// eventValidator is the -validate-events probe: it checks every
// structured event and decision audit the sweep emits against the closed
// obs tables (known kinds, known segment modes, known reason codes,
// finite timestamps). A violation means an engine emitted vocabulary the
// schema doesn't declare — exactly the regression the scenario-smoke CI
// step exists to catch when a new registration lands.
//
// The probe is shared by all parallel runs of the sweep, so it keeps no
// per-run state: membership checks are pure, counters are atomic, and
// only the first violation's detail is retained (under a mutex) for the
// error message.
type eventValidator struct {
	events     atomic.Int64
	decisions  atomic.Int64
	violations atomic.Int64

	mu    sync.Mutex
	first string
}

var (
	knownKinds   = memberSet(obs.KnownEventKinds())
	knownReasons = memberSet(obs.KnownReasons())
	knownModes   = map[string]bool{"": true, "run": true, "idle": true, "stall": true, "sleep": true}
)

func memberSet[T comparable](members []T) map[T]bool {
	set := make(map[T]bool, len(members))
	for _, m := range members {
		set[m] = true
	}
	return set
}

func (v *eventValidator) violate(format string, args ...any) {
	if v.violations.Add(1) == 1 {
		v.mu.Lock()
		v.first = fmt.Sprintf(format, args...)
		v.mu.Unlock()
	}
}

func (v *eventValidator) OnEvent(e obs.Event) {
	v.events.Add(1)
	if !knownKinds[e.Kind] {
		v.violate("event kind %q not in obs.KnownEventKinds", e.Kind)
	}
	if !knownModes[e.Mode] {
		v.violate("segment mode %q unknown", e.Mode)
	}
	if math.IsNaN(e.Time) || math.IsInf(e.Time, 0) {
		v.violate("event %q at non-finite time %v", e.Kind, e.Time)
	}
}

func (v *eventValidator) OnDecision(d obs.DecisionRecord) {
	v.decisions.Add(1)
	if !knownReasons[d.Reason] {
		v.violate("decision reason %q not in obs.KnownReasons", d.Reason)
	}
	if math.IsNaN(d.Time) || math.IsInf(d.Time, 0) {
		v.violate("decision %q at non-finite time %v", d.Reason, d.Time)
	}
}

// report summarizes the validation pass; the error is non-nil when any
// event or decision fell outside the closed tables.
func (v *eventValidator) report() error {
	if n := v.violations.Load(); n > 0 {
		v.mu.Lock()
		first := v.first
		v.mu.Unlock()
		return fmt.Errorf("%d invalid events/decisions (first: %s)", n, first)
	}
	fmt.Printf("validate-events: %d events, %d decision audits, all within the closed obs tables\n",
		v.events.Load(), v.decisions.Load())
	return nil
}
