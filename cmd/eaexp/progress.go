package main

import (
	"fmt"
	"os"
	"time"

	"github.com/eadvfs/eadvfs/internal/experiment"
)

// etaAlpha is the EWMA weight of the newest throughput observation. At
// 0.2 a single straggler batch moves the estimate ~20% of the way toward
// its instantaneous rate instead of yanking the ETA around, while a real
// slowdown converges within a handful of updates.
const etaAlpha = 0.2

// etaTracker estimates time-to-completion from an exponentially weighted
// moving average of throughput. All arithmetic runs on differences of
// time.Time values from the same clock, so a readings sequence from
// time.Now — which carries Go's monotonic reading — is immune to
// wall-clock steps (NTP jumps, suspend/resume); tests inject synthetic
// timestamps instead.
type etaTracker struct {
	alpha    float64   // EWMA weight, (0, 1]; zero means etaAlpha
	rate     float64   // smoothed throughput, runs per second
	lastDone int       // done count at the previous observation
	lastT    time.Time // timestamp of the previous observation
	primed   bool      // rate holds at least one observation
}

// update folds one progress report into the estimate and renders it:
// "--" before any throughput is observable, "done" at completion, else a
// rounded duration. A done count at or below the previous one means a new
// batch started; the smoothed rate deliberately survives the reset — the
// workers didn't change, only the counter did.
func (t *etaTracker) update(done, total int, now time.Time) string {
	if done <= t.lastDone || t.lastT.IsZero() {
		// New batch (or first observation): this report becomes the
		// baseline; throughput resumes accumulating from the next one.
		t.lastDone = done
		t.lastT = now
	}
	alpha := t.alpha
	if alpha <= 0 || alpha > 1 {
		alpha = etaAlpha
	}
	if dt := now.Sub(t.lastT); dt > 0 && done > t.lastDone {
		inst := float64(done-t.lastDone) / dt.Seconds()
		if t.primed {
			t.rate = alpha*inst + (1-alpha)*t.rate
		} else {
			t.rate = inst
			t.primed = true
		}
		t.lastDone = done
		t.lastT = now
	}
	switch {
	case done >= total:
		return "done"
	case !t.primed || t.rate <= 0:
		return "--"
	}
	left := time.Duration(float64(total-done) / t.rate * float64(time.Second))
	return left.Round(time.Second).String()
}

// startProgress installs a live progress reporter on the experiment
// harness: a single stderr line, rewritten in place after each finished
// run, showing runs done / total, an EWMA-smoothed ETA, and how many runs
// degraded under injected faults. It is disabled with -quiet or when
// stderr is not a terminal (CI logs stay clean), in which case the
// returned stop function is a no-op.
//
// Each parallel batch (a sweep may run several) restarts the done/total
// pair; the ETA always refers to the current batch, but the smoothed
// throughput carries across batches. Updates are throttled so the
// reporter stays off the workers' critical path.
func startProgress(quiet bool) (stop func()) {
	if quiet || !stderrIsTerminal() {
		return func() {}
	}

	var (
		eta     etaTracker
		last    time.Time
		printed bool
	)
	experiment.Progress = func(done, total int) {
		now := time.Now()
		// Throttle rewrites, but never drop an observation: the tracker
		// sees every report so the EWMA stays honest; always draw the
		// final state of a batch.
		s := eta.update(done, total, now)
		if done < total && now.Sub(last) < 100*time.Millisecond {
			return
		}
		last = now
		fmt.Fprintf(os.Stderr, "\r\x1b[2K%d/%d runs  eta %s  degraded %d",
			done, total, s, experiment.DegradedRuns.Load())
		printed = true
	}
	return func() {
		experiment.Progress = nil
		if printed {
			fmt.Fprintln(os.Stderr)
		}
	}
}

// stderrIsTerminal reports whether stderr is a character device — the
// stdlib-only TTY test (no syscall package games, no external deps).
func stderrIsTerminal() bool {
	fi, err := os.Stderr.Stat()
	if err != nil {
		return false
	}
	return fi.Mode()&os.ModeCharDevice != 0
}
