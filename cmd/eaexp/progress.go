package main

import (
	"fmt"
	"os"
	"time"

	"github.com/eadvfs/eadvfs/internal/experiment"
)

// startProgress installs a live progress reporter on the experiment
// harness: a single stderr line, rewritten in place after each finished
// run, showing runs done / total, the ETA extrapolated from the elapsed
// time, and how many runs degraded under injected faults. It is disabled
// with -quiet or when stderr is not a terminal (CI logs stay clean), in
// which case the returned stop function is a no-op.
//
// Each parallel batch (a sweep may run several) restarts the done/total
// pair; the ETA always refers to the current batch. Updates are throttled
// so the reporter stays off the workers' critical path.
func startProgress(quiet bool) (stop func()) {
	if quiet || !stderrIsTerminal() {
		return func() {}
	}

	var (
		start   time.Time
		last    time.Time
		printed bool
	)
	experiment.Progress = func(done, total int) {
		now := time.Now()
		if done == 1 {
			start = now
		}
		// Throttle rewrites; always draw the final state of a batch.
		if done < total && now.Sub(last) < 100*time.Millisecond {
			return
		}
		last = now
		eta := "--"
		if done > 0 && done < total && !start.IsZero() {
			left := time.Duration(float64(now.Sub(start)) / float64(done) * float64(total-done))
			eta = left.Round(time.Second).String()
		} else if done == total {
			eta = "done"
		}
		fmt.Fprintf(os.Stderr, "\r\x1b[2K%d/%d runs  eta %s  degraded %d",
			done, total, eta, experiment.DegradedRuns.Load())
		printed = true
	}
	return func() {
		experiment.Progress = nil
		if printed {
			fmt.Fprintln(os.Stderr)
		}
	}
}

// stderrIsTerminal reports whether stderr is a character device — the
// stdlib-only TTY test (no syscall package games, no external deps).
func stderrIsTerminal() bool {
	fi, err := os.Stderr.Stat()
	if err != nil {
		return false
	}
	return fi.Mode()&os.ModeCharDevice != 0
}
