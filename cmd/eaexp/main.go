// Command eaexp regenerates the paper's evaluation artifacts:
//
//	eaexp -exp fig5              energy source sample path (Figure 5)
//	eaexp -exp fig6              remaining energy, U = 0.4 (Figure 6)
//	eaexp -exp fig7              remaining energy, U = 0.8 (Figure 7)
//	eaexp -exp fig8              miss rate vs capacity, U = 0.4 (Figure 8)
//	eaexp -exp fig9              miss rate vs capacity, U = 0.8 (Figure 9)
//	eaexp -exp table1            minimum-capacity ratios (Table 1)
//	eaexp -exp all               everything
//	eaexp -exp robustness        miss rate vs fault intensity (beyond the paper)
//	eaexp -exp slack             miss rate vs best-case/WCET ratio, reclaiming policies (beyond the paper)
//	eaexp -exp sleep             miss rate per DPM sleep preset (beyond the paper)
//
// Each experiment prints an ASCII chart or table and, with -csv DIR,
// writes the raw series as CSV. -replications trades fidelity for time
// (the paper used 5000 task sets per point).
//
// Further flags: -seed, -pmax, -predictor, -alpha and -width shape the
// spec and charts; -cpuprofile/-memprofile write pprof profiles;
// -version prints the build identity.
//
// The robustness sweep subjects the -policies set (default EDF, LSA and
// EA-DVFS) to the canonical mixed-fault model (harvester dropouts,
// storage fade and leakage spikes, stuck DVFS, predictor blackouts, WCET
// overruns) at each -intensities step; -fault-seed pins the fault
// schedule, -capacity the storage size.
//
// Observability: while a sweep runs, a live progress line (runs done /
// total, ETA, degraded-run count) is rewritten on stderr when it is a
// terminal; -quiet suppresses it. -metrics-out aggregates every run of
// the sweep into a Prometheus text-format snapshot, -events-out streams
// the structured per-run event log (JSONL schema v1 — large!), and
// -manifest-out records the experiment's build, seeds and parameter
// digest for reproduction.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"github.com/eadvfs/eadvfs/internal/buildinfo"
	"github.com/eadvfs/eadvfs/internal/experiment"
	"github.com/eadvfs/eadvfs/internal/metrics"
	"github.com/eadvfs/eadvfs/internal/obs"
	"github.com/eadvfs/eadvfs/internal/plot"
	"github.com/eadvfs/eadvfs/internal/profiling"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment: fig5, fig6, fig7, fig8, fig9, table1, all")
		reps  = flag.Int("replications", 0, "task sets per point (0 = experiment default)")
		seed  = flag.Uint64("seed", 1, "master seed")
		pmax  = flag.Float64("pmax", 10, "processor maximum power")
		pred  = flag.String("predictor", "ewma", "harvest predictor")
		alpha = flag.Float64("alpha", 0, "predictor smoothing factor override in (0, 1]; 0 keeps the default")
		csv   = flag.String("csv", "", "directory for CSV output (omit to skip)")
		width = flag.Int("width", 72, "chart width in columns")

		// -exp robustness parameters.
		intensities = flag.String("intensities", "0,0.25,0.5,0.75,1", "comma-separated fault intensities in [0, 1]")
		faultSeed   = flag.Uint64("fault-seed", 1, "master fault-schedule seed")
		capacity    = flag.Float64("capacity", 1000, "storage capacity of the robustness sweep")
		policies    = flag.String("policies", "edf,lsa,ea-dvfs", "comma-separated policies of the robustness sweep")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memprofile = flag.String("memprofile", "", "write an allocation profile taken after the run to this file")

		// -exp slack / -exp sleep parameters.
		slackFactors = flag.String("slack-factors", "0.1,0.25,0.5,0.75,1", "comma-separated best-case/WCET ratios of the slack sweep, each in (0, 1]")
		sleepPresets = flag.String("sleep-presets", "none,default", "comma-separated DPM sleep presets of the sleep ablation")

		validateEvents = flag.Bool("validate-events", false, "validate every structured event and decision audit against the closed obs tables; exit non-zero on any violation")

		quiet       = flag.Bool("quiet", false, "suppress the live progress line on stderr")
		metricsOut  = flag.String("metrics-out", "", "write a Prometheus text-format snapshot aggregated over all runs to this file")
		eventsOut   = flag.String("events-out", "", "write the structured per-run event log (JSONL schema v1) to this file")
		manifestOut = flag.String("manifest-out", "", "write the experiment manifest (build, seeds, parameter digest) to this file")
		version     = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.Line("eaexp"))
		return
	}

	stopCPU, err := profiling.StartCPU(*cpuprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "eaexp:", err)
		os.Exit(1)
	}
	defer stopCPU()
	defer func() {
		if err := profiling.WriteHeap(*memprofile); err != nil {
			fmt.Fprintln(os.Stderr, "eaexp:", err)
		}
	}()

	spec := experiment.DefaultSpec()
	spec.Seed = *seed
	spec.PMax = *pmax
	spec.Predictor = *pred
	spec.PredictorAlpha = *alpha
	if *reps > 0 {
		spec.Replications = *reps
	}

	// Observability sinks, shared by every run of the invocation.
	var probes []obs.Probe
	var eventsW *obs.JSONLWriter
	if *eventsOut != "" {
		f, err := os.Create(*eventsOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "eaexp:", err)
			os.Exit(1)
		}
		defer f.Close()
		eventsW = obs.NewJSONLWriter(f)
		probes = append(probes, eventsW)
		defer func() {
			if err := eventsW.Flush(); err != nil {
				fmt.Fprintln(os.Stderr, "eaexp:", err)
			}
		}()
	}
	var reg *obs.Registry
	if *metricsOut != "" {
		reg = obs.NewRegistry()
		probes = append(probes, obs.NewMetricsProbe(reg))
		spec.Metrics = reg
		defer func() {
			f, err := os.Create(*metricsOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "eaexp:", err)
				return
			}
			err = reg.WritePrometheus(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "eaexp:", err)
			}
		}()
	}
	var validator *eventValidator
	if *validateEvents {
		validator = &eventValidator{}
		probes = append(probes, validator)
	}
	spec.Probe = obs.Multi(probes...)

	if *manifestOut != "" {
		mcfg := struct {
			Exp         string          `json:"exp"`
			Spec        experiment.Spec `json:"spec"`
			Intensities string          `json:"intensities,omitempty"`
			FaultSeed   uint64          `json:"fault_seed,omitempty"`
			Capacity    float64         `json:"capacity,omitempty"`
			Policies    string          `json:"policies,omitempty"`
		}{Exp: *exp, Spec: spec}
		if *exp == "robustness" {
			mcfg.Intensities = *intensities
			mcfg.FaultSeed = *faultSeed
			mcfg.Capacity = *capacity
			mcfg.Policies = *policies
		}
		m, err := obs.NewManifest("eaexp", *exp,
			map[string]uint64{"seed": *seed, "fault-seed": *faultSeed}, mcfg)
		if err == nil {
			err = m.WriteFile(*manifestOut)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "eaexp:", err)
			os.Exit(1)
		}
	}

	stopProgress := startProgress(*quiet)
	defer stopProgress()

	run := func(name string, f func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "eaexp %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	run("fig5", func() error { return fig5(spec, *csv, *width) })
	run("fig6", func() error { return remaining(spec, 0.4, "fig6", *csv, *width) })
	run("fig7", func() error { return remaining(spec, 0.8, "fig7", *csv, *width) })
	run("fig8", func() error { return missRate(spec, 0.4, "fig8", *csv, *width) })
	run("fig9", func() error { return missRate(spec, 0.8, "fig9", *csv, *width) })
	run("table1", func() error { return table1(spec, *csv) })

	// Sensitivity sweeps (beyond the paper; not part of -exp all).
	runOnly := func(name string, f func() error) {
		if *exp != name {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "eaexp %s: %v\n", name, err)
			os.Exit(1)
		}
	}
	runOnly("sens-levels", func() error {
		res, err := experiment.LevelCountSweep(spec, []float64{1, 2, 3, 5, 8, 12}, []string{"lsa", "ea-dvfs"})
		if err != nil {
			return err
		}
		return printSweep(res, *csv)
	})
	runOnly("sens-pmax", func() error {
		res, err := experiment.PMaxSweep(spec, []float64{4, 6, 8, 10, 12, 16}, []string{"lsa", "ea-dvfs"})
		if err != nil {
			return err
		}
		return printSweep(res, *csv)
	})
	runOnly("sens-tasks", func() error {
		res, err := experiment.TaskCountSweep(spec, []float64{1, 2, 5, 10, 20}, []string{"lsa", "ea-dvfs"})
		if err != nil {
			return err
		}
		return printSweep(res, *csv)
	})
	runOnly("overhead", func() error {
		sp := spec
		sp.Capacities = []float64{300}
		policies := []string{"edf", "static-dvfs", "lsa", "ea-dvfs"}
		res, err := experiment.Overhead(sp, policies)
		if err != nil {
			return err
		}
		header := []string{"policy", "missrate", "response", "switches", "preemptions", "decisions", "events"}
		var rows [][]string
		for _, name := range res.Policies {
			rows = append(rows, []string{
				name,
				fmt.Sprintf("%.4f", res.MissRate[name]),
				fmt.Sprintf("%.2f", res.ResponseMean[name]),
				fmt.Sprintf("%.0f", res.Switches[name]),
				fmt.Sprintf("%.0f", res.Preemptions[name]),
				fmt.Sprintf("%.0f", res.Decisions[name]),
				fmt.Sprintf("%.0f", res.Events[name]),
			})
		}
		fmt.Println("Scheduling overhead per 10,000-unit run (mean over replications, capacity 300)")
		fmt.Println(plot.Table(header, rows))
		return nil
	})
	runOnly("convergence", func() error {
		sp := spec
		sp.Capacities = []float64{300}
		counts := []int{5, 10, 20, 40}
		if sp.Replications < 40 {
			counts = []int{2, 5, sp.Replications}
		}
		header := []string{"replications", "miss rate", "stderr"}
		for _, policy := range []string{"lsa", "ea-dvfs"} {
			res, err := experiment.Convergence(sp, policy, counts)
			if err != nil {
				return err
			}
			var rows [][]string
			for i, n := range res.Counts {
				rows = append(rows, []string{
					fmt.Sprintf("%d", n),
					fmt.Sprintf("%.4f", res.Rate[i]),
					fmt.Sprintf("%.4f", res.StdErr[i]),
				})
			}
			fmt.Printf("Convergence of the %s miss-rate estimate (capacity 300)\n", policy)
			fmt.Println(plot.Table(header, rows))
		}
		return nil
	})
	runOnly("robustness", func() error {
		xs, err := parseFloatList(*intensities)
		if err != nil {
			return err
		}
		rs := experiment.RobustnessSpec{
			Base:        spec,
			Policies:    strings.Split(*policies, ","),
			Intensities: xs,
			FaultSeed:   *faultSeed,
			Capacity:    *capacity,
		}
		res, err := experiment.RobustnessSweep(rs)
		if err != nil {
			return err
		}
		fmt.Print(res.Summary())
		var b strings.Builder
		b.WriteString("intensity")
		for _, p := range rs.Policies {
			fmt.Fprintf(&b, ",%s", p)
		}
		b.WriteByte('\n')
		for i, x := range res.Intensities {
			fmt.Fprintf(&b, "%g", x)
			for _, p := range rs.Policies {
				fmt.Fprintf(&b, ",%g", res.MissRates[p][i])
			}
			b.WriteByte('\n')
		}
		return writeCSV(*csv, "robustness.csv", b.String())
	})
	runOnly("slack", func() error {
		factors, err := parseFloatList(*slackFactors)
		if err != nil {
			return err
		}
		res, err := experiment.SlackFactorSweep(spec, factors,
			[]string{"lsa", "ea-dvfs", "lsa-reclaim", "ea-dvfs-reclaim"})
		if err != nil {
			return err
		}
		fmt.Println("Slack-factor sweep: stochastic-periodic workload, reclaiming vs plain policies")
		return printSweep(res, *csv)
	})
	runOnly("sleep", func() error {
		sp := spec
		// The ablation compares presets per point; give it slack to sleep
		// into so the states are actually entered.
		sp.TaskModel = "stochastic-periodic"
		res, err := experiment.SleepStateSweep(sp,
			strings.Split(*sleepPresets, ","),
			[]string{"lsa", "ea-dvfs"})
		if err != nil {
			return err
		}
		fmt.Println("Sleep-state ablation: DPM presets under a stochastic workload")
		return printSweep(res, *csv)
	})
	runOnly("sens-predictors", func() error {
		// Every registered predictor, enumerated rather than hardcoded: a
		// freshly registered predictor joins the sensitivity sweep for free.
		res, err := experiment.PredictorSweep(spec,
			experiment.PredictorNames(),
			[]string{"lsa", "ea-dvfs"})
		if err != nil {
			return err
		}
		return printSweep(res, *csv)
	})

	switch *exp {
	case "all", "fig5", "fig6", "fig7", "fig8", "fig9", "table1",
		"sens-levels", "sens-pmax", "sens-tasks", "sens-predictors",
		"overhead", "convergence", "robustness", "slack", "sleep":
	default:
		fmt.Fprintf(os.Stderr, "eaexp: unknown experiment %q\n", *exp)
		os.Exit(2)
	}

	if validator != nil {
		if err := validator.report(); err != nil {
			fmt.Fprintln(os.Stderr, "eaexp: validate-events:", err)
			os.Exit(1)
		}
	}
}

func parseFloatList(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, fmt.Errorf("eaexp: bad float %q: %w", f, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func printSweep(res *experiment.SensitivityResult, csvDir string) error {
	header := append([]string{res.Param}, res.Policies...)
	var rows [][]string
	var csvB strings.Builder
	csvB.WriteString(strings.Join(header, ","))
	csvB.WriteByte('\n')
	for i := range res.Points {
		row := []string{res.PointLabel(i)}
		csvB.WriteString(res.PointLabel(i))
		for _, name := range res.Policies {
			row = append(row, fmt.Sprintf("%.4f", res.Rates[name][i]))
			fmt.Fprintf(&csvB, ",%g", res.Rates[name][i])
		}
		rows = append(rows, row)
		csvB.WriteByte('\n')
	}
	fmt.Printf("Sensitivity sweep: deadline miss rate vs %s\n", res.Param)
	fmt.Println(plot.Table(header, rows))
	return writeCSV(csvDir, "sweep.csv", csvB.String())
}

func writeCSV(dir, name, content string) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644)
}

func seriesLine(name string, s *metrics.Series) plot.Line {
	l := plot.Line{Name: name}
	for i, v := range s.Values {
		l.X = append(l.X, s.TimeAt(i))
		l.Y = append(l.Y, v)
	}
	return l
}

func fig5(spec experiment.Spec, csvDir string, width int) error {
	s := experiment.SourceTrace(spec.Seed, int(spec.Horizon))
	line := seriesLine("PS(t)", s)
	fmt.Println(plot.Chart("Figure 5: energy source behavior (eq. 13 sample path)",
		width, 16, plot.Downsampled(line, width)))
	return writeCSV(csvDir, "fig5.csv", plot.CSV("t", line))
}

func remaining(spec experiment.Spec, u float64, name, csvDir string, width int) error {
	spec.Utilization = u
	res, err := experiment.RemainingEnergy(spec, []string{"lsa", "ea-dvfs"})
	if err != nil {
		return err
	}
	lines := []plot.Line{
		seriesLine("ea-dvfs", res.Curves["ea-dvfs"]),
		seriesLine("lsa", res.Curves["lsa"]),
	}
	title := fmt.Sprintf("Figure %s: normalized remaining energy, U = %.1f (%d replications x %d capacities)",
		strings.TrimPrefix(name, "fig"), u, spec.Replications, len(spec.Capacities))
	down := make([]plot.Line, len(lines))
	for i, l := range lines {
		down[i] = plot.Downsampled(l, width)
	}
	fmt.Println(plot.Chart(title, width, 16, down...))
	return writeCSV(csvDir, name+".csv", plot.CSV("t", lines...))
}

// FigureCapacities extends the paper's sweep into the small-capacity
// region where the Figures 8–9 x axis starts.
func figureCapacities() []float64 {
	return []float64{50, 100, 200, 300, 500, 1000, 2000, 3000, 4000, 5000}
}

func missRate(spec experiment.Spec, u float64, name, csvDir string, width int) error {
	spec.Utilization = u
	spec.Capacities = figureCapacities()
	res, err := experiment.MissRateSweep(spec, []string{"lsa", "ea-dvfs"})
	if err != nil {
		return err
	}
	var lines []plot.Line
	for _, pn := range []string{"lsa", "ea-dvfs"} {
		l := plot.Line{Name: pn}
		for i := range res.Capacities {
			l.X = append(l.X, res.NormalizedCapacity(i))
			l.Y = append(l.Y, res.Rates[pn][i])
		}
		lines = append(lines, l)
	}
	title := fmt.Sprintf("Figure %s: deadline miss rate vs normalized storage capacity, U = %.1f (%d replications)",
		strings.TrimPrefix(name, "fig"), u, spec.Replications)
	fmt.Println(plot.Chart(title, width, 14, lines...))

	header := []string{"capacity", "normalized", "lsa", "ea-dvfs", "reduction"}
	var rows [][]string
	for i, c := range res.Capacities {
		lsa := res.Rates["lsa"][i]
		ea := res.Rates["ea-dvfs"][i]
		red := "-"
		if lsa > 0 {
			red = fmt.Sprintf("%.0f%%", 100*(1-ea/lsa))
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.0f", c),
			fmt.Sprintf("%.2f", res.NormalizedCapacity(i)),
			fmt.Sprintf("%.4f", lsa),
			fmt.Sprintf("%.4f", ea),
			red,
		})
	}
	fmt.Println(plot.Table(header, rows))
	return writeCSV(csvDir, name+".csv", plot.CSV("normalized_capacity", lines...))
}

func table1(spec experiment.Spec, csvDir string) error {
	utils := []float64{0.2, 0.4, 0.6, 0.8}
	res, err := experiment.MinCapacity(spec, utils, []string{"lsa", "ea-dvfs"})
	if err != nil {
		return err
	}
	header := []string{"U", "Cmin(LSA)", "Cmin(EA-DVFS)", "ratio", "stderr"}
	var rows [][]string
	var csvB strings.Builder
	csvB.WriteString("u,cmin_lsa,cmin_eadvfs,ratio,stderr\n")
	for i, u := range res.Utilizations {
		rows = append(rows, []string{
			fmt.Sprintf("%.1f", u),
			fmt.Sprintf("%.0f", res.Mean["lsa"][i]),
			fmt.Sprintf("%.0f", res.Mean["ea-dvfs"][i]),
			fmt.Sprintf("%.2f", res.Ratio[i]),
			fmt.Sprintf("%.2f", res.RatioErr[i]),
		})
		fmt.Fprintf(&csvB, "%g,%g,%g,%g,%g\n", u,
			res.Mean["lsa"][i], res.Mean["ea-dvfs"][i], res.Ratio[i], res.RatioErr[i])
	}
	fmt.Println("Table 1: minimum storage capacity for zero deadline misses, Cmin-LSA / Cmin-EA-DVFS")
	fmt.Println(plot.Table(header, rows))
	if res.Skipped > 0 {
		fmt.Printf("(skipped %d replications with no zero-miss capacity in range)\n", res.Skipped)
	}
	return writeCSV(csvDir, "table1.csv", csvB.String())
}
