package main

import (
	"strings"
	"testing"
	"time"
)

// steady progress at one run per second must converge on an exact ETA.
func TestETASteadyRate(t *testing.T) {
	var tr etaTracker
	base := time.Unix(0, 0)
	var got string
	for done := 1; done <= 5; done++ {
		got = tr.update(done, 10, base.Add(time.Duration(done)*time.Second))
	}
	if got != "5s" {
		t.Fatalf("steady 1 run/s at 5/10: eta %q, want 5s", got)
	}
}

// Before any throughput is observable the tracker must admit ignorance,
// and at completion it must say so.
func TestETABoundaries(t *testing.T) {
	var tr etaTracker
	base := time.Unix(0, 0)
	if got := tr.update(1, 10, base); got != "--" {
		t.Fatalf("first observation: eta %q, want --", got)
	}
	if got := tr.update(10, 10, base.Add(9*time.Second)); got != "done" {
		t.Fatalf("completion: eta %q, want done", got)
	}
}

// A single straggler observation must move the ETA only fractionally:
// that is the EWMA's job. After 1 run/s for a while, one 10x-slower run
// must not multiply the ETA by 10.
func TestETASmoothsStragglers(t *testing.T) {
	tr := etaTracker{alpha: 0.2}
	base := time.Unix(0, 0)
	now := base
	for done := 1; done <= 5; done++ {
		now = base.Add(time.Duration(done) * time.Second)
		tr.update(done, 100, now)
	}
	rateBefore := tr.rate
	now = now.Add(10 * time.Second) // one run took 10s instead of 1s
	tr.update(6, 100, now)
	// EWMA: 0.2*0.1 + 0.8*1.0 = 0.82 runs/s, not 0.1.
	if tr.rate < 0.7*rateBefore {
		t.Fatalf("one straggler collapsed rate %.3f -> %.3f; EWMA not smoothing", rateBefore, tr.rate)
	}
	if tr.rate >= rateBefore {
		t.Fatalf("straggler did not lower rate at all: %.3f -> %.3f", rateBefore, tr.rate)
	}
}

// A batch restart (done counter going backwards) must reset the counter
// baseline without forgetting the learned throughput.
func TestETABatchRestartKeepsRate(t *testing.T) {
	var tr etaTracker
	base := time.Unix(0, 0)
	for done := 1; done <= 4; done++ {
		tr.update(done, 4, base.Add(time.Duration(done)*time.Second))
	}
	learned := tr.rate
	if learned <= 0 {
		t.Fatal("no rate learned in first batch")
	}
	// New batch: done drops back to 1.
	got := tr.update(1, 8, base.Add(10*time.Second))
	if tr.rate != learned {
		t.Fatalf("restart clobbered the smoothed rate: %.3f -> %.3f", learned, tr.rate)
	}
	if got == "--" {
		t.Fatalf("restart forgot throughput entirely: eta %q", got)
	}
}

// The estimate must be driven by clock differences only: feeding the
// same wall time twice (a stalled or stepped clock) must not produce a
// negative or exploding ETA, and time must never run backwards through
// the arithmetic.
func TestETAMonotonicArithmetic(t *testing.T) {
	var tr etaTracker
	base := time.Unix(1e9, 0)
	tr.update(1, 10, base)
	tr.update(2, 10, base.Add(time.Second))
	got := tr.update(3, 10, base.Add(time.Second)) // dt == 0: observation dropped
	if strings.HasPrefix(got, "-") {
		t.Fatalf("zero-dt observation produced negative eta %q", got)
	}
	// A later healthy observation still updates normally.
	got = tr.update(4, 10, base.Add(3*time.Second))
	if got == "--" || strings.HasPrefix(got, "-") {
		t.Fatalf("tracker wedged after zero-dt observation: eta %q", got)
	}
}
