package main

// Trace stitching and the per-shard latency breakdown (DESIGN.md §15).
// The coordinator records its own sweep/shard/attempt spans plus the
// worker spans shipped back in X-Trace-Spans headers; this file turns
// that flat span list into one tree and a table answering "where did
// this sweep's time go" — queue wait, engine compute, retry burn and
// hedge waste, per shard.

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"text/tabwriter"
	"time"

	"github.com/eadvfs/eadvfs/internal/obs"
)

// shardRow is one shard's latency accounting, read off its span subtree.
type shardRow struct {
	Index    int
	Worker   string        // serving worker (from the shard span)
	Attempts int           // attempt spans under the shard
	Wins     int           // attempts with outcome=ok (exactly 1 when complete)
	Queue    time.Duration // winning attempt's worker-side admission wait
	Compute  time.Duration // winning attempt's worker-side engine time
	Retry    time.Duration // total time burned in failed attempts
	Hedge    time.Duration // total time of hedge attempts that lost
}

// traceReport stitches the recorded spans and derives the per-shard
// breakdown. complete is the CI-checkable tree property: at least one
// sweep root exists, every shard span holds exactly one winning attempt,
// and the root's duration covers every child's.
func traceReport(spans []obs.Span) (tree *obs.SpanTree, rows []shardRow, complete bool) {
	tree = obs.StitchSpans(spans)
	complete = true
	roots := 0
	tree.Walk(func(n *obs.SpanNode, depth int) {
		if n.Span.Service != "eactl" || n.Span.Name != "sweep" {
			return
		}
		roots++
		if n.Orphan {
			complete = false
		}
		for _, c := range n.Children {
			if c.Span.End().Sub(n.Span.Start) > n.Span.Duration+n.Skew {
				// A child outlasting its root means spans are missing or
				// clocks are lying beyond the stitcher's skew allowance.
				complete = false
			}
			if c.Span.Name != "shard" {
				continue
			}
			row := shardRowOf(c)
			if row.Wins != 1 {
				complete = false
			}
			rows = append(rows, row)
		}
	})
	if roots == 0 {
		complete = false
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Index < rows[j].Index })
	return tree, rows, complete
}

// shardRowOf folds one shard span's subtree into its latency row.
func shardRowOf(n *obs.SpanNode) shardRow {
	row := shardRow{Index: -1, Worker: n.Span.Attrs["worker"]}
	if v, err := strconv.Atoi(n.Span.Attrs["shard"]); err == nil {
		row.Index = v
	}
	for _, a := range n.Children {
		if a.Span.Name != "attempt" {
			continue
		}
		row.Attempts++
		switch a.Span.Attrs["outcome"] {
		case "ok":
			row.Wins++
			row.Queue += durationOfDescendant(a, "admission")
			row.Compute += durationOfDescendant(a, "engine")
		default:
			// A failed or cancelled attempt burned its whole duration;
			// hedge losers are waste hedging chose to risk, retries are
			// waste the fleet imposed.
			if a.Span.Attrs["hedge"] == "true" {
				row.Hedge += a.Span.Duration
			} else {
				row.Retry += a.Span.Duration
			}
		}
	}
	return row
}

// durationOfDescendant sums the durations of every span named name in
// n's subtree (the worker request span nests between the attempt and
// its admission/engine children).
func durationOfDescendant(n *obs.SpanNode, name string) time.Duration {
	var total time.Duration
	var rec func(*obs.SpanNode)
	rec = func(m *obs.SpanNode) {
		for _, c := range m.Children {
			if c.Span.Name == name {
				total += c.Span.Duration
			}
			rec(c)
		}
	}
	rec(n)
	return total
}

// printTraceSummary appends the trace accounting to the fleet summary:
// one status line (span count, completeness) and the per-shard breakdown
// table.
func printTraceSummary(w io.Writer, spans []obs.Span) {
	tree, rows, complete := traceReport(spans)
	status := "complete"
	if !complete {
		status = "INCOMPLETE"
	}
	trace := ""
	if len(spans) > 0 {
		trace = spans[0].Trace.String()
	}
	fmt.Fprintf(w, "eactl: trace %s: %d spans, %d orphaned, tree %s\n",
		trace, tree.Spans, tree.Orphans, status)
	if len(rows) == 0 {
		return
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "eactl: shard\tworker\tattempts\tqueue\tcompute\tretry\thedge-wasted")
	for _, r := range rows {
		fmt.Fprintf(tw, "eactl: %d\t%s\t%d\t%s\t%s\t%s\t%s\n",
			r.Index, r.Worker, r.Attempts,
			fmtDur(r.Queue), fmtDur(r.Compute), fmtDur(r.Retry), fmtDur(r.Hedge))
	}
	tw.Flush()
}

func fmtDur(d time.Duration) string {
	return d.Round(10 * time.Microsecond).String()
}

// writeTraceJSONL writes every span as a schema-v1.1 JSONL line, the
// same format obs.CheckJSONL validates.
func writeTraceJSONL(path string, spans []obs.Span) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	jw := obs.NewJSONLWriter(f)
	for _, sp := range spans {
		jw.OnSpan(sp)
	}
	err = jw.Flush()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
