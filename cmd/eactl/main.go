// Command eactl coordinates evaluation sweeps over a fleet of easerve
// workers (internal/fabric): the sweep is split into disjoint shards,
// fanned out over /v1/sweep with retries, hedging and per-worker circuit
// breaking, and merged bit-reproducibly — the output is byte-identical to
// running the same sweep on one machine.
//
// Usage:
//
//	eactl -workers http://h1:8080,http://h2:8080 [-kind missrate]
//	      [-policies lsa,ea-dvfs] [-utilization 0.4] [-caps 50,...]
//	      [-replications N] [-seed 1] [-horizon 10000]
//	      [-shards-per-worker 2] [-max-attempts 4] [-timeout 120s]
//	      [-hedge-after 2s] [-allow-partial] [-o out.json]
//	      [-metrics-out metrics.prom] [-trace-out trace.jsonl]
//	      [-capabilities] [-verbose] [-version]
//
// With -local the sweep runs in-process instead of on a fleet and writes
// the identical bytes — the single-node reference a distributed run can
// be compared against (CI does exactly that with cmp).
//
// The result JSON is the sweep aggregate (experiment.MissRateResult or
// experiment.RemainingEnergyResult); a fleet-health summary — shards,
// attempts, retries, hedges, lost shards — goes to stderr.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/eadvfs/eadvfs/internal/buildinfo"
	"github.com/eadvfs/eadvfs/internal/experiment"
	"github.com/eadvfs/eadvfs/internal/fabric"
	"github.com/eadvfs/eadvfs/internal/obs"
	"github.com/eadvfs/eadvfs/internal/service"
)

func main() {
	var (
		workersFlag = flag.String("workers", "", "comma-separated easerve base URLs (required unless -local)")
		local       = flag.Bool("local", false, "run the sweep in-process (single-node reference output)")
		kind        = flag.String("kind", "missrate", "sweep kind: missrate or remaining")
		policies    = flag.String("policies", "lsa,ea-dvfs", "comma-separated policies to compare")

		horizon = flag.Float64("horizon", 0, "simulated time units (0 = paper default)")
		tasks   = flag.Int("tasks", 0, "periodic tasks per set (0 = paper default)")
		util    = flag.Float64("utilization", 0, "target utilization at fmax (0 = paper default)")
		caps    = flag.String("caps", "", "comma-separated storage capacities (empty = paper default)")
		reps    = flag.Int("replications", 0, "task sets per point (0 = paper default)")
		seed    = flag.Uint64("seed", 0, "master seed (0 = paper default)")
		pred    = flag.String("predictor", "", "harvest predictor (empty = paper default)")
		alpha   = flag.Float64("alpha", 0, "predictor smoothing override in (0, 1]")
		pmax    = flag.Float64("pmax", 0, "processor maximum power (0 = paper default)")

		shardsPerWorker = flag.Int("shards-per-worker", 2, "plan density: shards = workers x this")
		maxAttempts     = flag.Int("max-attempts", 4, "tries per shard before giving up")
		timeout         = flag.Duration("timeout", 120*time.Second, "per-attempt request budget")
		hedgeAfter      = flag.Duration("hedge-after", 2*time.Second, "race a second worker after this straggler delay (negative disables)")
		allowPartial    = flag.Bool("allow-partial", false, "degrade to a partial aggregate when shards exhaust retries")

		out          = flag.String("o", "", "write the result JSON here (default stdout)")
		metricsOut   = flag.String("metrics-out", "", "write fabric metrics (Prometheus text) here")
		traceOut     = flag.String("trace-out", "", "write the sweep's spans (schema v1.1 JSONL) here")
		capabilities = flag.Bool("capabilities", false, "print each worker's GET /v1/capabilities document and exit")
		verbose      = flag.Bool("verbose", false, "log retries, hedges and breaker events to stderr")
		version      = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Line("eactl"))
		return
	}
	if *capabilities {
		if err := printCapabilities(os.Stdout, splitList(*workersFlag), *timeout); err != nil {
			fatal(err)
		}
		return
	}

	spec := experiment.Spec{
		NumTasks:       *tasks,
		Utilization:    *util,
		Replications:   *reps,
		Seed:           *seed,
		Predictor:      *pred,
		PredictorAlpha: *alpha,
		PMax:           *pmax,
	}
	spec.Horizon = *horizon
	if *caps != "" {
		cs, err := parseFloats(*caps)
		if err != nil {
			fatal(err)
		}
		spec.Capacities = cs
	}
	spec = service.NormalizeSpec(spec)
	policyList := splitList(*policies)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	payload, err := runSweep(ctx, *local, *workersFlag, *kind, spec, policyList, fleetConfig{
		shardsPerWorker: *shardsPerWorker,
		maxAttempts:     *maxAttempts,
		timeout:         *timeout,
		hedgeAfter:      *hedgeAfter,
		allowPartial:    *allowPartial,
		verbose:         *verbose,
		metricsOut:      *metricsOut,
		traceOut:        *traceOut,
	})
	if err != nil {
		fatal(err)
	}
	if err := writeOut(*out, payload); err != nil {
		fatal(err)
	}
}

type fleetConfig struct {
	shardsPerWorker int
	maxAttempts     int
	timeout         time.Duration
	hedgeAfter      time.Duration
	allowPartial    bool
	verbose         bool
	metricsOut      string
	traceOut        string
}

// runSweep produces the result JSON (with trailing newline) either
// in-process (-local) or via the fabric coordinator. Both paths marshal
// the identical aggregate type, which is what makes the outputs
// byte-comparable.
func runSweep(ctx context.Context, local bool, workersFlag, kind string, spec experiment.Spec, policies []string, fc fleetConfig) ([]byte, error) {
	var aggregate any
	if local {
		// A local run still gets a root span when tracing is requested —
		// a one-node tree, but the same JSONL format as a fleet trace.
		var recorder *obs.Recorder
		var root *obs.ActiveSpan
		if fc.traceOut != "" {
			recorder = obs.NewRecorder()
			root = obs.StartSpan(recorder, "eactl", "sweep", obs.SpanContext{})
			root.SetAttr("kind", kind)
			root.SetAttr("mode", "local")
			spec.Spans = parentedSink{sink: recorder, parent: root.Context()}
		}
		var err error
		switch kind {
		case "missrate":
			aggregate, err = experiment.MissRateSweepCtx(ctx, spec, policies)
		case "remaining":
			aggregate, err = experiment.RemainingEnergyCtx(ctx, spec, policies)
		default:
			err = fmt.Errorf("unknown sweep kind %q", kind)
		}
		root.End()
		if err != nil {
			return nil, err
		}
		if fc.traceOut != "" {
			if terr := writeTraceJSONL(fc.traceOut, recorder.Spans()); terr != nil {
				return nil, terr
			}
		}
	} else {
		workers := splitList(workersFlag)
		if len(workers) == 0 {
			return nil, fmt.Errorf("-workers is required (or use -local)")
		}
		// Tracing is always on for fleet runs: the recorder is cheap
		// relative to network sweeps, and the stitched tree is the only
		// way to see where a slow sweep actually spent its time.
		recorder := obs.NewRecorder()
		opts := fabric.Options{
			Workers:         workers,
			ShardsPerWorker: fc.shardsPerWorker,
			MaxAttempts:     fc.maxAttempts,
			RequestTimeout:  fc.timeout,
			HedgeAfter:      fc.hedgeAfter,
			AllowPartial:    fc.allowPartial,
			Registry:        obs.NewRegistry(),
			Trace:           recorder,
		}
		if fc.verbose {
			opts.Logf = func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "eactl: "+format+"\n", args...)
			}
		}
		c, err := fabric.New(opts)
		if err != nil {
			return nil, err
		}
		res, err := c.RunSweep(ctx, kind, spec, policies)
		if fc.metricsOut != "" {
			if merr := writeMetrics(fc.metricsOut, c.Registry()); merr != nil && err == nil {
				err = merr
			}
		}
		if err != nil {
			return nil, err
		}
		printSummary(os.Stderr, res)
		printTraceSummary(os.Stderr, recorder.Spans())
		if fc.traceOut != "" {
			if terr := writeTraceJSONL(fc.traceOut, recorder.Spans()); terr != nil {
				return nil, terr
			}
		}
		switch kind {
		case "missrate":
			aggregate = res.Merged.MissRate
		case "remaining":
			aggregate = res.Merged.Remaining
		}
	}
	raw, err := json.Marshal(aggregate)
	if err != nil {
		return nil, err
	}
	return append(raw, '\n'), nil
}

// parentedSink forwards spans to a sink while advertising a fixed parent
// context, so experiment phase spans nest under the local root span.
type parentedSink struct {
	sink   obs.SpanSink
	parent obs.SpanContext
}

func (p parentedSink) OnSpan(sp obs.Span)           { p.sink.OnSpan(sp) }
func (p parentedSink) TraceParent() obs.SpanContext { return p.parent }

// printSummary writes the fleet-health accounting to w.
func printSummary(w io.Writer, res *fabric.SweepResult) {
	attempts, hedged := 0, 0
	for _, sh := range res.Shards {
		attempts += sh.Attempts
		if sh.Hedged {
			hedged++
		}
	}
	fmt.Fprintf(w, "eactl: %d shards, %d attempts, %d hedged, %d incomplete\n",
		len(res.Shards), attempts, hedged, res.Incomplete)
	if res.Incomplete > 0 {
		fmt.Fprintf(w, "eactl: PARTIAL result: %d shards lost, %d grid cells missing\n",
			res.Incomplete, res.Merged.MissingCells)
		for _, sh := range res.Shards {
			if sh.Err != nil {
				fmt.Fprintf(w, "eactl:   shard %d: %v\n", sh.Shard.Index, sh.Err)
			}
		}
	}
}

func writeMetrics(path string, reg *obs.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = reg.WritePrometheus(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// printCapabilities fetches and prints each worker's capability document
// (GET /v1/capabilities): what policies, sources, predictors and task
// models — with which parameter schemas — each build supports. Identical
// builds serve byte-identical documents, so the output doubles as a
// fleet-homogeneity check before planning a sweep.
func printCapabilities(w io.Writer, workers []string, timeout time.Duration) error {
	if len(workers) == 0 {
		return fmt.Errorf("-capabilities needs -workers")
	}
	client := &http.Client{Timeout: timeout}
	for _, base := range workers {
		resp, err := client.Get(strings.TrimRight(base, "/") + "/v1/capabilities")
		if err != nil {
			return fmt.Errorf("worker %s: %w", base, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("worker %s: %w", base, err)
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("worker %s: %s: %s", base, resp.Status, strings.TrimSpace(string(body)))
		}
		fmt.Fprintf(w, "%s\t%s", base, body)
	}
	return nil
}

func writeOut(path string, payload []byte) error {
	if path == "" {
		_, err := os.Stdout.Write(payload)
		return err
	}
	return os.WriteFile(path, payload, 0o644)
}

// splitList splits a comma-separated flag, dropping empty elements.
func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, p := range splitList(s) {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("bad float %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "eactl:", err)
	os.Exit(1)
}
