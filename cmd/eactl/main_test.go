package main

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"github.com/eadvfs/eadvfs/internal/experiment"
	"github.com/eadvfs/eadvfs/internal/service"
)

// The -local path must write exactly the bytes the library produces plus
// a trailing newline — that is the single-node reference CI compares the
// fleet output against.
func TestRunSweepLocalMatchesLibrary(t *testing.T) {
	spec := service.NormalizeSpec(experiment.Spec{
		Horizon:      1000,
		Replications: 2,
		Capacities:   []float64{300},
	})
	policies := []string{"lsa"}

	got, err := runSweep(context.Background(), true, "", "missrate", spec, policies, fleetConfig{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := experiment.MissRateSweepCtx(context.Background(), spec, policies)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	want = append(want, '\n')
	if string(got) != string(want) {
		t.Fatal("-local output differs from library bytes")
	}
}

func TestRunSweepRejectsBadInput(t *testing.T) {
	spec := service.NormalizeSpec(experiment.Spec{})
	if _, err := runSweep(context.Background(), true, "", "nope", spec, []string{"lsa"}, fleetConfig{}); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := runSweep(context.Background(), false, "", "missrate", spec, []string{"lsa"}, fleetConfig{}); err == nil {
		t.Fatal("fleet run without workers accepted")
	}
}

func TestSplitListAndParseFloats(t *testing.T) {
	if got := splitList(" a, ,b ,"); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("splitList: %v", got)
	}
	if got := splitList(""); got != nil {
		t.Fatalf("splitList(empty): %v", got)
	}
	vals, err := parseFloats("200, 600.5")
	if err != nil || !reflect.DeepEqual(vals, []float64{200, 600.5}) {
		t.Fatalf("parseFloats: %v %v", vals, err)
	}
	if _, err := parseFloats("200,x"); err == nil {
		t.Fatal("bad float accepted")
	}
}
