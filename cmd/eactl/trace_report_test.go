package main

import (
	"strings"
	"testing"
	"time"

	"github.com/eadvfs/eadvfs/internal/obs"
)

// span is a test-local builder around obs.Span.
func span(trace obs.TraceID, parent obs.SpanID, service, name string, start time.Time, d time.Duration, attrs map[string]string) obs.Span {
	return obs.Span{
		Trace: trace, ID: obs.NewSpanID(), Parent: parent,
		Service: service, Name: name, Start: start, Duration: d, Attrs: attrs,
	}
}

// A full fleet trace — retries, a hedged loser, worker-side sub-spans —
// must fold into one row per shard with the right latency attribution,
// and be judged complete.
func TestTraceReportBreakdown(t *testing.T) {
	trace := obs.NewTraceID()
	base := time.Unix(5000, 0)
	root := span(trace, obs.SpanID{}, "eactl", "sweep", base, 10*time.Second, nil)

	// Shard 0: one failed attempt (300ms), then a winner whose worker
	// reports 40ms admission and 2s engine.
	sh0 := span(trace, root.ID, "eactl", "shard", base, 4*time.Second,
		map[string]string{"shard": "0", "worker": "http://w0"})
	fail0 := span(trace, sh0.ID, "eactl", "attempt", base, 300*time.Millisecond,
		map[string]string{"outcome": "error", "hedge": "false"})
	win0 := span(trace, sh0.ID, "eactl", "attempt", base.Add(time.Second), 3*time.Second,
		map[string]string{"outcome": "ok", "hedge": "false"})
	req0 := span(trace, win0.ID, "easerve", "request:sweep", base.Add(time.Second), 2500*time.Millisecond, nil)
	adm0 := span(trace, req0.ID, "easerve", "admission", base.Add(time.Second), 40*time.Millisecond, nil)
	eng0 := span(trace, req0.ID, "easerve", "engine", base.Add(1100*time.Millisecond), 2*time.Second, nil)

	// Shard 1: winner plus a hedged loser cancelled after 500ms.
	sh1 := span(trace, root.ID, "eactl", "shard", base, 3*time.Second,
		map[string]string{"shard": "1", "worker": "http://w1"})
	win1 := span(trace, sh1.ID, "eactl", "attempt", base, 2*time.Second,
		map[string]string{"outcome": "ok", "hedge": "false"})
	loser1 := span(trace, sh1.ID, "eactl", "attempt", base.Add(time.Second), 500*time.Millisecond,
		map[string]string{"outcome": "cancelled", "hedge": "true"})

	spans := []obs.Span{eng0, adm0, req0, win0, fail0, sh0, loser1, win1, sh1, root}
	_, rows, complete := traceReport(spans)
	if !complete {
		t.Fatal("well-formed trace judged incomplete")
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rows))
	}
	r0 := rows[0]
	if r0.Index != 0 || r0.Worker != "http://w0" || r0.Attempts != 2 {
		t.Fatalf("row 0 identity: %+v", r0)
	}
	if r0.Queue != 40*time.Millisecond || r0.Compute != 2*time.Second {
		t.Fatalf("row 0 queue/compute: %s / %s", r0.Queue, r0.Compute)
	}
	if r0.Retry != 300*time.Millisecond || r0.Hedge != 0 {
		t.Fatalf("row 0 retry/hedge: %s / %s", r0.Retry, r0.Hedge)
	}
	r1 := rows[1]
	if r1.Hedge != 500*time.Millisecond || r1.Retry != 0 {
		t.Fatalf("row 1 hedge/retry: %s / %s", r1.Hedge, r1.Retry)
	}
}

// Completeness must fail when a shard has no winning attempt, when the
// root is missing entirely, and when a child outlasts its root.
func TestTraceReportIncomplete(t *testing.T) {
	trace := obs.NewTraceID()
	base := time.Unix(5000, 0)

	t.Run("no winning attempt", func(t *testing.T) {
		root := span(trace, obs.SpanID{}, "eactl", "sweep", base, 5*time.Second, nil)
		sh := span(trace, root.ID, "eactl", "shard", base, 4*time.Second,
			map[string]string{"shard": "0"})
		fail := span(trace, sh.ID, "eactl", "attempt", base, time.Second,
			map[string]string{"outcome": "error"})
		_, rows, complete := traceReport([]obs.Span{root, sh, fail})
		if complete {
			t.Fatal("shard without a winner judged complete")
		}
		if len(rows) != 1 || rows[0].Wins != 0 {
			t.Fatalf("rows: %+v", rows)
		}
	})

	t.Run("missing root", func(t *testing.T) {
		lost := obs.NewSpanID()
		sh := span(trace, lost, "eactl", "shard", base, time.Second,
			map[string]string{"shard": "0"})
		if _, _, complete := traceReport([]obs.Span{sh}); complete {
			t.Fatal("rootless trace judged complete")
		}
	})

	t.Run("child outlasts root", func(t *testing.T) {
		root := span(trace, obs.SpanID{}, "eactl", "sweep", base, time.Second, nil)
		sh := span(trace, root.ID, "eactl", "shard", base, 5*time.Second,
			map[string]string{"shard": "0"})
		win := span(trace, sh.ID, "eactl", "attempt", base, time.Second,
			map[string]string{"outcome": "ok"})
		if _, _, complete := traceReport([]obs.Span{root, sh, win}); complete {
			t.Fatal("child outlasting root judged complete")
		}
	})

	t.Run("empty input", func(t *testing.T) {
		if _, _, complete := traceReport(nil); complete {
			t.Fatal("empty trace judged complete")
		}
	})
}

// The printed summary must carry the status line (greppable by CI) and
// one table row per shard.
func TestPrintTraceSummary(t *testing.T) {
	trace := obs.NewTraceID()
	base := time.Unix(5000, 0)
	root := span(trace, obs.SpanID{}, "eactl", "sweep", base, 5*time.Second, nil)
	sh := span(trace, root.ID, "eactl", "shard", base, 4*time.Second,
		map[string]string{"shard": "0", "worker": "http://w0"})
	win := span(trace, sh.ID, "eactl", "attempt", base, time.Second,
		map[string]string{"outcome": "ok"})
	var out strings.Builder
	printTraceSummary(&out, []obs.Span{root, sh, win})
	text := out.String()
	if !strings.Contains(text, "tree complete") {
		t.Fatalf("summary missing completeness status:\n%s", text)
	}
	if !strings.Contains(text, trace.String()) {
		t.Fatalf("summary missing trace id:\n%s", text)
	}
	if !strings.Contains(text, "hedge-wasted") || !strings.Contains(text, "http://w0") {
		t.Fatalf("summary missing table:\n%s", text)
	}
}
