// Command eatrace renders the schedule of a small scenario as an ASCII
// Gantt chart — the fastest way to *see* what a policy does.
//
// Usage:
//
//	eatrace [-scenario fig1|fig3|random] [-policy ea-dvfs] [-width 78]
//	        [-u 0.4] [-horizon 400] [-seed 1]      (random scenario)
//	        [-csv] [-activity] [-audit] [-version]
//
// Examples:
//
//	eatrace -scenario fig1 -policy lsa        the paper's §2 example
//	eatrace -scenario fig1 -policy ea-dvfs
//	eatrace -scenario fig1 -policy ea-dvfs -audit
//	eatrace -scenario fig3 -policy greedy-stretch
//	eatrace -scenario random -u 0.4 -policy ea-dvfs -horizon 400
//
// -csv emits the segment CSV instead of the chart; -activity appends the
// per-task activity table; -audit prints the scheduler's decision log
// (time, job, slack, energy state, s1/s2, chosen level and reason code)
// next to the Gantt.
//
// Legend: digits = operating point (0 slowest), '!' = stalled on empty
// storage, '^' arrival, 'v' completion, 'X' deadline miss.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"github.com/eadvfs/eadvfs/internal/buildinfo"
	"github.com/eadvfs/eadvfs/internal/cpu"
	"github.com/eadvfs/eadvfs/internal/energy"
	"github.com/eadvfs/eadvfs/internal/experiment"
	"github.com/eadvfs/eadvfs/internal/obs"
	"github.com/eadvfs/eadvfs/internal/sim"
	"github.com/eadvfs/eadvfs/internal/storage"
	"github.com/eadvfs/eadvfs/internal/task"
	"github.com/eadvfs/eadvfs/internal/trace"
)

func main() {
	var (
		scenario = flag.String("scenario", "fig1", "fig1, fig3, or random")
		policy   = flag.String("policy", "ea-dvfs", "scheduling policy")
		u        = flag.Float64("u", 0.4, "utilization (random scenario)")
		horizon  = flag.Float64("horizon", 400, "horizon (random scenario)")
		seed     = flag.Uint64("seed", 1, "seed (random scenario)")
		width    = flag.Int("width", 78, "gantt width in columns")
		csv      = flag.Bool("csv", false, "emit the segment CSV instead of the gantt")
		activity = flag.Bool("activity", false, "append the per-task activity table (responses, jitter, fragments)")
		audit    = flag.Bool("audit", false, "append the scheduler decision log (slack, energy, s1/s2, reason codes)")
		version  = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.Line("eatrace"))
		return
	}

	pf, err := experiment.Policy(*policy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "eatrace:", err)
		os.Exit(1)
	}

	rec := trace.NewRecorder()
	var cfg *sim.Config
	switch *scenario {
	case "fig1":
		src := energy.NewConstant(0.5)
		cfg = &sim.Config{
			Horizon: 25,
			Tasks: []task.Task{
				{ID: 1, Period: 1e9, Deadline: 16, WCET: 4, Offset: 0},
				{ID: 2, Period: 1e9, Deadline: 16, WCET: 1.5, Offset: 5},
			},
			Source:    src,
			Predictor: energy.NewOracle(src),
			Store:     storage.New(1e6, 24),
			CPU:       cpu.TwoSpeed(8),
		}
	case "fig3":
		src := energy.NewConstant(0)
		cfg = &sim.Config{
			Horizon: 20,
			Tasks: []task.Task{
				{ID: 1, Period: 1e9, Deadline: 16, WCET: 4, Offset: 0},
				{ID: 2, Period: 1e9, Deadline: 12, WCET: 1.5, Offset: 5},
			},
			Source:    src,
			Predictor: energy.NewOracle(src),
			Store:     storage.New(1e6, 32),
			CPU:       cpu.Fig3(),
		}
	case "random":
		spec := experiment.DefaultSpec()
		spec.Utilization = *u
		spec.Seed = *seed
		rep, err := experiment.Replicate(spec, 0)
		if err != nil {
			fmt.Fprintln(os.Stderr, "eatrace:", err)
			os.Exit(1)
		}
		src := energy.NewSolarModel(rep.SourceSeed)
		cfg = &sim.Config{
			Horizon:   *horizon,
			Tasks:     rep.Tasks,
			Source:    src,
			Predictor: energy.NewEWMA(0.2),
			Store:     storage.NewIdeal(300),
			CPU:       spec.Processor(),
		}
	default:
		fmt.Fprintf(os.Stderr, "eatrace: unknown scenario %q\n", *scenario)
		os.Exit(2)
	}
	cfg.Policy = pf()
	cfg.Tracer = rec
	var auditRec *obs.Recorder
	if *audit {
		auditRec = &obs.Recorder{}
		cfg.Probe = auditRec
	}

	res, err := sim.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "eatrace:", err)
		os.Exit(1)
	}

	if *csv {
		fmt.Print(rec.CSV())
		return
	}
	fmt.Printf("scenario %s under %s — released %d, finished %d, missed %d\n\n",
		*scenario, cfg.Policy.Name(), res.Miss.Released, res.Miss.Finished, res.Miss.Missed)
	fmt.Print(rec.Gantt(cfg.Horizon, *width))
	fmt.Printf("\ndigits = DVFS level (0 slowest), '!' stall, '^' arrival, 'v' completion, 'X' miss\n")
	if *activity {
		fmt.Println()
		fmt.Print(rec.ActivityTable())
	}
	if auditRec != nil {
		fmt.Println()
		printAudit(auditRec.Decisions())
	}
}

// printAudit renders the decision log: one line per policy decision with
// the job, its slack, the energy estimate the policy used, the s1/s2
// instants, the chosen operating point and the reason code. Consecutive
// identical decisions (same job, reason and level — the re-evaluations a
// lazy policy makes at every event while idling) are compressed into one
// line with a repeat count.
func printAudit(decs []obs.DecisionRecord) {
	fmt.Println("decision audit (consecutive identical decisions compressed):")
	fmt.Printf("%8s %-22s %8s %8s %8s %8s %8s %5s %6s  %s\n",
		"t", "job", "slack", "stored", "avail", "s1", "s2", "level", "until", "reason")
	for i := 0; i < len(decs); {
		d := decs[i]
		j := i + 1
		for j < len(decs) && decs[j].TaskID == d.TaskID && decs[j].Seq == d.Seq &&
			decs[j].Reason == d.Reason && decs[j].Level == d.Level {
			j++
		}
		job := "-"
		if d.TaskID >= 0 {
			job = fmt.Sprintf("task %d#%d", d.TaskID, d.Seq)
		}
		if n := j - i; n > 1 {
			job += fmt.Sprintf(" (x%d)", n)
		}
		level := "-"
		if d.Level >= 0 {
			level = fmt.Sprintf("%d", d.Level)
		}
		until := "-"
		if !math.IsInf(d.Until, 0) {
			until = fmt.Sprintf("%.2f", d.Until)
		}
		fmt.Printf("%8.2f %-22s %8.2f %8.1f %8.1f %8.2f %8.2f %5s %6s  %s\n",
			d.Time, job, d.Slack, d.Stored, d.Available, d.S1, d.S2, level, until, d.Reason)
		i = j
	}
}
