// Command eatrace renders the schedule of a small scenario as an ASCII
// Gantt chart — the fastest way to *see* what a policy does.
//
//	eatrace -scenario fig1 -policy lsa        the paper's §2 example
//	eatrace -scenario fig1 -policy ea-dvfs
//	eatrace -scenario fig3 -policy greedy-stretch
//	eatrace -scenario random -u 0.4 -policy ea-dvfs -horizon 400
//
// Legend: digits = operating point (0 slowest), '!' = stalled on empty
// storage, '^' arrival, 'v' completion, 'X' deadline miss.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/eadvfs/eadvfs/internal/cpu"
	"github.com/eadvfs/eadvfs/internal/energy"
	"github.com/eadvfs/eadvfs/internal/experiment"
	"github.com/eadvfs/eadvfs/internal/sim"
	"github.com/eadvfs/eadvfs/internal/storage"
	"github.com/eadvfs/eadvfs/internal/task"
	"github.com/eadvfs/eadvfs/internal/trace"
)

func main() {
	var (
		scenario = flag.String("scenario", "fig1", "fig1, fig3, or random")
		policy   = flag.String("policy", "ea-dvfs", "scheduling policy")
		u        = flag.Float64("u", 0.4, "utilization (random scenario)")
		horizon  = flag.Float64("horizon", 400, "horizon (random scenario)")
		seed     = flag.Uint64("seed", 1, "seed (random scenario)")
		width    = flag.Int("width", 78, "gantt width in columns")
		csv      = flag.Bool("csv", false, "emit the segment CSV instead of the gantt")
		activity = flag.Bool("activity", false, "append the per-task activity table (responses, jitter, fragments)")
	)
	flag.Parse()

	pf, err := experiment.Policy(*policy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "eatrace:", err)
		os.Exit(1)
	}

	rec := trace.NewRecorder()
	var cfg *sim.Config
	switch *scenario {
	case "fig1":
		src := energy.NewConstant(0.5)
		cfg = &sim.Config{
			Horizon: 25,
			Tasks: []task.Task{
				{ID: 1, Period: 1e9, Deadline: 16, WCET: 4, Offset: 0},
				{ID: 2, Period: 1e9, Deadline: 16, WCET: 1.5, Offset: 5},
			},
			Source:    src,
			Predictor: energy.NewOracle(src),
			Store:     storage.New(1e6, 24),
			CPU:       cpu.TwoSpeed(8),
		}
	case "fig3":
		src := energy.NewConstant(0)
		cfg = &sim.Config{
			Horizon: 20,
			Tasks: []task.Task{
				{ID: 1, Period: 1e9, Deadline: 16, WCET: 4, Offset: 0},
				{ID: 2, Period: 1e9, Deadline: 12, WCET: 1.5, Offset: 5},
			},
			Source:    src,
			Predictor: energy.NewOracle(src),
			Store:     storage.New(1e6, 32),
			CPU:       cpu.Fig3(),
		}
	case "random":
		spec := experiment.DefaultSpec()
		spec.Utilization = *u
		spec.Seed = *seed
		rep, err := experiment.Replicate(spec, 0)
		if err != nil {
			fmt.Fprintln(os.Stderr, "eatrace:", err)
			os.Exit(1)
		}
		src := energy.NewSolarModel(rep.SourceSeed)
		cfg = &sim.Config{
			Horizon:   *horizon,
			Tasks:     rep.Tasks,
			Source:    src,
			Predictor: energy.NewEWMA(0.2),
			Store:     storage.NewIdeal(300),
			CPU:       spec.Processor(),
		}
	default:
		fmt.Fprintf(os.Stderr, "eatrace: unknown scenario %q\n", *scenario)
		os.Exit(2)
	}
	cfg.Policy = pf()
	cfg.Tracer = rec

	res, err := sim.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "eatrace:", err)
		os.Exit(1)
	}

	if *csv {
		fmt.Print(rec.CSV())
		return
	}
	fmt.Printf("scenario %s under %s — released %d, finished %d, missed %d\n\n",
		*scenario, cfg.Policy.Name(), res.Miss.Released, res.Miss.Finished, res.Miss.Missed)
	fmt.Print(rec.Gantt(cfg.Horizon, *width))
	fmt.Printf("\ndigits = DVFS level (0 slowest), '!' stall, '^' arrival, 'v' completion, 'X' miss\n")
	if *activity {
		fmt.Println()
		fmt.Print(rec.ActivityTable())
	}
}
