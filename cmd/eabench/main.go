// Command eabench runs the repository's canonical benchmark workloads
// (internal/bench — the same cases `go test -bench` runs) with a
// self-contained measurement loop and emits both:
//
//   - Go benchmark format on stdout (benchstat-compatible), and
//   - a machine-readable JSON report (-json), the format of the checked-in
//     BENCH_baseline.json at the repo root.
//
// Each case reports ns/op, allocs/op, B/op and the experiment's shape
// metrics (missrate/*, energy/*, ratio/*, …). The shape metrics are the
// regression guard: an "optimization" that moves them changed the science,
// not just the speed. See DESIGN.md §9 for the regeneration workflow.
//
// Usage:
//
//	eabench [-bench regexp] [-run regexp] [-count 1] [-benchtime 1]
//	        [-json out.json] [-check baseline.json] [-check-perf=true]
//	        [-manifest-out manifest.json]
//	        [-cpuprofile cpu.out] [-memprofile mem.out] [-version]
//
// -run is a second case filter ANDed with -bench (mirroring `go test`'s
// flag pair), so scripts can pin a sub-selection without clobbering a
// caller-supplied -bench.
//
// -check compares the run against a baseline JSON report, prints a delta
// line per compared case (current/baseline ratios for ns/op, allocs/op and
// B/op), and fails when a case regresses: allocs/op beyond baseline×1.15+2
// (the hot-path allocation guard — a probe-free run must stay
// allocation-free), ns/op beyond baseline×2.5 (a loose wall-clock tripwire
// that tolerates CI machine noise but catches order-of-magnitude
// slowdowns), or any shape metric whose bits differ from the baseline's
// (metrics are seed-deterministic; any drift means the science changed).
// -check-perf=false skips the two perf bounds but keeps the bit-exact
// metric comparison — the mode CI uses under the race detector, where
// wall-clock and allocation counts are meaningless but the shape metrics
// must still be identical.
// -manifest-out records the build and measurement parameters.
//
// Examples:
//
//	eabench -count 5 | tee new.txt && benchstat old.txt new.txt
//	eabench -json BENCH_baseline.json
//	eabench -check BENCH_baseline.json
//	eabench -run 'Table1|RunMany' -check BENCH_baseline.json -check-perf=false
//	eabench -bench Engine -benchtime 20 -cpuprofile cpu.out
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"regexp"
	"runtime"
	"sort"
	"time"

	"github.com/eadvfs/eadvfs/internal/bench"
	"github.com/eadvfs/eadvfs/internal/buildinfo"
	"github.com/eadvfs/eadvfs/internal/obs"
	"github.com/eadvfs/eadvfs/internal/profiling"
)

// caseReport is one measurement of one case (the JSON schema).
type caseReport struct {
	Name       string             `json:"name"`
	Iterations int                `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	AllocsOp   float64            `json:"allocs_per_op"`
	BytesOp    float64            `json:"bytes_per_op"`
	Metrics    map[string]float64 `json:"metrics"`
}

type report struct {
	GoVersion string       `json:"go_version"`
	GOOS      string       `json:"goos"`
	GOARCH    string       `json:"goarch"`
	Count     int          `json:"count"`
	Benchtime int          `json:"benchtime_iterations"`
	Cases     []caseReport `json:"cases"`
}

func main() {
	var (
		benchRe     = flag.String("bench", ".", "regexp selecting which cases to run")
		runRe       = flag.String("run", "", "additional case filter ANDed with -bench (empty = no extra filter)")
		count       = flag.Int("count", 1, "measurements per case (use >1 for benchstat input)")
		benchtime   = flag.Int("benchtime", 1, "iterations per measurement (fixed, not adaptive: the workloads are deterministic)")
		jsonPath    = flag.String("json", "", "write the JSON report (last measurement per case) to this file")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile of the benchmark run to this file")
		memprofile  = flag.String("memprofile", "", "write an allocation profile taken after the run to this file")
		checkPath   = flag.String("check", "", "compare against this baseline JSON report and fail on regressions")
		checkPerf   = flag.Bool("check-perf", true, "enforce the ns/op and allocs/op bounds during -check (disable under -race, where both are meaningless; shape metrics are always compared)")
		manifestOut = flag.String("manifest-out", "", "write the benchmark manifest (build, measurement parameters) to this file")
		version     = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.Line("eabench"))
		return
	}

	re, err := regexp.Compile(*benchRe)
	if err != nil {
		fatalf("eabench: bad -bench regexp: %v", err)
	}
	var runFilter *regexp.Regexp
	if *runRe != "" {
		if runFilter, err = regexp.Compile(*runRe); err != nil {
			fatalf("eabench: bad -run regexp: %v", err)
		}
	}
	if *count < 1 || *benchtime < 1 {
		fatalf("eabench: -count and -benchtime must be >= 1")
	}

	stopCPU, err := profiling.StartCPU(*cpuprofile)
	if err != nil {
		fatalf("eabench: %v", err)
	}
	defer stopCPU()

	rep := report{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Count:     *count,
		Benchtime: *benchtime,
	}

	// Header lines benchstat uses to group results.
	fmt.Printf("goos: %s\ngoarch: %s\npkg: github.com/eadvfs/eadvfs/internal/bench\n", rep.GOOS, rep.GOARCH)

	ran := 0
	for _, c := range bench.Cases() {
		if !re.MatchString(c.Name) || (runFilter != nil && !runFilter.MatchString(c.Name)) {
			continue
		}
		ran++
		var last caseReport
		for m := 0; m < *count; m++ {
			r, err := measure(c, *benchtime)
			if err != nil {
				fatalf("eabench: %s: %v", c.Name, err)
			}
			printGoBench(r)
			last = r
		}
		rep.Cases = append(rep.Cases, last)
	}
	if ran == 0 {
		if *runRe != "" {
			fatalf("eabench: no cases match -bench %q AND -run %q", *benchRe, *runRe)
		}
		fatalf("eabench: no cases match -bench %q", *benchRe)
	}

	if *jsonPath != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatalf("eabench: %v", err)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonPath, buf, 0o644); err != nil {
			fatalf("eabench: %v", err)
		}
		fmt.Fprintf(os.Stderr, "eabench: wrote %s\n", *jsonPath)
	}

	if *manifestOut != "" {
		m, err := obs.NewManifest("eabench", "", nil, struct {
			Bench     string `json:"bench"`
			Count     int    `json:"count"`
			Benchtime int    `json:"benchtime"`
		}{*benchRe, *count, *benchtime})
		if err != nil {
			fatalf("eabench: %v", err)
		}
		if err := m.WriteFile(*manifestOut); err != nil {
			fatalf("eabench: %v", err)
		}
		fmt.Fprintf(os.Stderr, "eabench: wrote %s\n", *manifestOut)
	}

	if err := profiling.WriteHeap(*memprofile); err != nil {
		fatalf("eabench: %v", err)
	}

	if *checkPath != "" {
		if err := checkAgainst(*checkPath, rep, *checkPerf); err != nil {
			fatalf("eabench: %v", err)
		}
		fmt.Fprintf(os.Stderr, "eabench: no regressions against %s\n", *checkPath)
	}
}

// Regression thresholds for -check. Allocations are near-deterministic,
// so the bound is tight: the probe-free hot path must stay (close to)
// allocation-free, and +15%+2 only absorbs runtime bookkeeping jitter.
// Wall-clock varies wildly across CI machines, so its bound is a loose
// tripwire for order-of-magnitude slowdowns, not a performance SLO.
const (
	allocSlackFactor = 1.15
	allocSlackConst  = 2.0
	nsSlackFactor    = 2.5
)

// checkAgainst compares this run's cases with a baseline report (the
// -json schema, e.g. the checked-in BENCH_baseline.json). Every compared
// case gets a delta line on stderr — current/baseline ratios for ns/op,
// allocs/op and B/op — whether or not it regressed, so a passing CI log
// still shows where the time went. All failures are collected and
// reported, not just the first.
//
// Perf bounds (allocSlackFactor/nsSlackFactor) apply only when perf is
// true; shape metrics present in both reports are always compared
// bit-exactly (math.Float64bits — the JSON float64 round-trip is exact, so
// equality is well-defined). Cases or metrics present in only one report
// are skipped: the baseline may predate a new workload, and -bench/-run
// may have filtered this run.
func checkAgainst(path string, cur report, perf bool) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base report
	if err := json.Unmarshal(buf, &base); err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	baseline := make(map[string]caseReport, len(base.Cases))
	for _, c := range base.Cases {
		baseline[c.Name] = c
	}
	var failures []string
	compared := 0
	for _, c := range cur.Cases {
		b, ok := baseline[c.Name]
		if !ok {
			fmt.Fprintf(os.Stderr, "eabench: delta: %s: not in baseline, skipped\n", c.Name)
			continue
		}
		compared++
		note := ""
		if c.Iterations != b.Iterations {
			note = fmt.Sprintf(" [iterations %d vs baseline %d — per-op amortization differs]",
				c.Iterations, b.Iterations)
		}
		fmt.Fprintf(os.Stderr, "eabench: delta: %s: ns/op %.2fx, allocs/op %.2fx, B/op %.2fx%s\n",
			c.Name, ratio(c.NsPerOp, b.NsPerOp), ratio(c.AllocsOp, b.AllocsOp),
			ratio(c.BytesOp, b.BytesOp), note)
		if perf {
			if limit := b.AllocsOp*allocSlackFactor + allocSlackConst; c.AllocsOp > limit {
				failures = append(failures, fmt.Sprintf(
					"%s: allocs/op %.1f exceeds baseline %.1f (limit %.1f)",
					c.Name, c.AllocsOp, b.AllocsOp, limit))
			}
			if limit := b.NsPerOp * nsSlackFactor; c.NsPerOp > limit {
				failures = append(failures, fmt.Sprintf(
					"%s: ns/op %.0f exceeds baseline %.0f (limit %.0f)",
					c.Name, c.NsPerOp, b.NsPerOp, limit))
			}
		}
		units := make([]string, 0, len(b.Metrics))
		for u := range b.Metrics {
			units = append(units, u)
		}
		sort.Strings(units)
		for _, u := range units {
			want := b.Metrics[u]
			got, ok := c.Metrics[u]
			if !ok {
				failures = append(failures, fmt.Sprintf(
					"%s: metric %s missing (baseline %g)", c.Name, u, want))
				continue
			}
			if math.Float64bits(got) != math.Float64bits(want) {
				failures = append(failures, fmt.Sprintf(
					"%s: metric %s drifted: %v != baseline %v (bits %016x != %016x)",
					c.Name, u, got, want, math.Float64bits(got), math.Float64bits(want)))
			}
		}
	}
	if compared == 0 {
		return fmt.Errorf("%s: no cases in common with this run", path)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "eabench: regression: %s\n", f)
		}
		return fmt.Errorf("%d regression(s) against %s", len(failures), path)
	}
	return nil
}

// ratio guards cur/base against a zero baseline (0/0 reads as parity).
func ratio(cur, base float64) float64 {
	if base == 0 {
		if cur == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return cur / base
}

// measure runs one case for n iterations between two ReadMemStats
// snapshots. testing.Benchmark would adapt b.N toward a time budget; a
// fixed iteration count keeps runs short and — because every workload is
// seed-deterministic — still exactly reproducible.
func measure(c bench.Case, n int) (caseReport, error) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	metrics, err := c.Run(n)
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return caseReport{}, err
	}
	return caseReport{
		Name:       c.Name,
		Iterations: n,
		NsPerOp:    float64(elapsed.Nanoseconds()) / float64(n),
		AllocsOp:   float64(after.Mallocs-before.Mallocs) / float64(n),
		BytesOp:    float64(after.TotalAlloc-before.TotalAlloc) / float64(n),
		Metrics:    metrics,
	}, nil
}

// printGoBench emits one measurement in Go benchmark format, shape
// metrics included, so benchstat can diff any of them across runs.
func printGoBench(r caseReport) {
	fmt.Printf("Benchmark%s %8d %12.0f ns/op %12.0f B/op %9.0f allocs/op",
		r.Name, r.Iterations, r.NsPerOp, r.BytesOp, r.AllocsOp)
	units := make([]string, 0, len(r.Metrics))
	for u := range r.Metrics {
		units = append(units, u)
	}
	sort.Strings(units)
	for _, u := range units {
		fmt.Printf(" %g %s", r.Metrics[u], u)
	}
	fmt.Println()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
