// Command eabench runs the repository's canonical benchmark workloads
// (internal/bench — the same cases `go test -bench` runs) with a
// self-contained measurement loop and emits both:
//
//   - Go benchmark format on stdout (benchstat-compatible), and
//   - a machine-readable JSON report (-json), the format of the checked-in
//     BENCH_baseline.json at the repo root.
//
// Each case reports ns/op, allocs/op, B/op and the experiment's shape
// metrics (missrate/*, energy/*, ratio/*, …). The shape metrics are the
// regression guard: an "optimization" that moves them changed the science,
// not just the speed. See DESIGN.md §9 for the regeneration workflow.
//
// Usage:
//
//	eabench [-bench regexp] [-count 1] [-benchtime 1] [-json out.json]
//	        [-cpuprofile cpu.out] [-memprofile mem.out]
//
// Examples:
//
//	eabench -count 5 | tee new.txt && benchstat old.txt new.txt
//	eabench -json BENCH_baseline.json
//	eabench -bench Engine -benchtime 20 -cpuprofile cpu.out
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sort"
	"time"

	"github.com/eadvfs/eadvfs/internal/bench"
	"github.com/eadvfs/eadvfs/internal/profiling"
)

// caseReport is one measurement of one case (the JSON schema).
type caseReport struct {
	Name       string             `json:"name"`
	Iterations int                `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	AllocsOp   float64            `json:"allocs_per_op"`
	BytesOp    float64            `json:"bytes_per_op"`
	Metrics    map[string]float64 `json:"metrics"`
}

type report struct {
	GoVersion string       `json:"go_version"`
	GOOS      string       `json:"goos"`
	GOARCH    string       `json:"goarch"`
	Count     int          `json:"count"`
	Benchtime int          `json:"benchtime_iterations"`
	Cases     []caseReport `json:"cases"`
}

func main() {
	var (
		benchRe    = flag.String("bench", ".", "regexp selecting which cases to run")
		count      = flag.Int("count", 1, "measurements per case (use >1 for benchstat input)")
		benchtime  = flag.Int("benchtime", 1, "iterations per measurement (fixed, not adaptive: the workloads are deterministic)")
		jsonPath   = flag.String("json", "", "write the JSON report (last measurement per case) to this file")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the benchmark run to this file")
		memprofile = flag.String("memprofile", "", "write an allocation profile taken after the run to this file")
	)
	flag.Parse()

	re, err := regexp.Compile(*benchRe)
	if err != nil {
		fatalf("eabench: bad -bench regexp: %v", err)
	}
	if *count < 1 || *benchtime < 1 {
		fatalf("eabench: -count and -benchtime must be >= 1")
	}

	stopCPU, err := profiling.StartCPU(*cpuprofile)
	if err != nil {
		fatalf("eabench: %v", err)
	}
	defer stopCPU()

	rep := report{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Count:     *count,
		Benchtime: *benchtime,
	}

	// Header lines benchstat uses to group results.
	fmt.Printf("goos: %s\ngoarch: %s\npkg: github.com/eadvfs/eadvfs/internal/bench\n", rep.GOOS, rep.GOARCH)

	ran := 0
	for _, c := range bench.Cases() {
		if !re.MatchString(c.Name) {
			continue
		}
		ran++
		var last caseReport
		for m := 0; m < *count; m++ {
			r, err := measure(c, *benchtime)
			if err != nil {
				fatalf("eabench: %s: %v", c.Name, err)
			}
			printGoBench(r)
			last = r
		}
		rep.Cases = append(rep.Cases, last)
	}
	if ran == 0 {
		fatalf("eabench: no cases match -bench %q", *benchRe)
	}

	if *jsonPath != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatalf("eabench: %v", err)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonPath, buf, 0o644); err != nil {
			fatalf("eabench: %v", err)
		}
		fmt.Fprintf(os.Stderr, "eabench: wrote %s\n", *jsonPath)
	}

	if err := profiling.WriteHeap(*memprofile); err != nil {
		fatalf("eabench: %v", err)
	}
}

// measure runs one case for n iterations between two ReadMemStats
// snapshots. testing.Benchmark would adapt b.N toward a time budget; a
// fixed iteration count keeps runs short and — because every workload is
// seed-deterministic — still exactly reproducible.
func measure(c bench.Case, n int) (caseReport, error) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	metrics, err := c.Run(n)
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return caseReport{}, err
	}
	return caseReport{
		Name:       c.Name,
		Iterations: n,
		NsPerOp:    float64(elapsed.Nanoseconds()) / float64(n),
		AllocsOp:   float64(after.Mallocs-before.Mallocs) / float64(n),
		BytesOp:    float64(after.TotalAlloc-before.TotalAlloc) / float64(n),
		Metrics:    metrics,
	}, nil
}

// printGoBench emits one measurement in Go benchmark format, shape
// metrics included, so benchstat can diff any of them across runs.
func printGoBench(r caseReport) {
	fmt.Printf("Benchmark%s %8d %12.0f ns/op %12.0f B/op %9.0f allocs/op",
		r.Name, r.Iterations, r.NsPerOp, r.BytesOp, r.AllocsOp)
	units := make([]string, 0, len(r.Metrics))
	for u := range r.Metrics {
		units = append(units, u)
	}
	sort.Strings(units)
	for _, u := range units {
		fmt.Printf(" %g %s", r.Metrics[u], u)
	}
	fmt.Println()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
