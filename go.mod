module github.com/eadvfs/eadvfs

go 1.22
