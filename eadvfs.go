// Package eadvfs is a discrete-event simulation library for real-time
// scheduling on energy-harvesting systems, reproducing Liu, Qiu & Wu,
// "Energy Aware Dynamic Voltage and Frequency Selection for Real-Time
// Systems with Energy Harvesting" (DATE 2008).
//
// The package is a facade over the full engine: it runs one simulation of
// a periodic task set on a DVFS processor fed by an energy-harvesting
// store, under one of the implemented scheduling policies:
//
//   - "ea-dvfs"          — the paper's contribution (§4)
//   - "ea-dvfs-dynamic"  — ablation: s2 recomputed instead of locked
//   - "lsa"              — lazy scheduling (Moser et al.), the baseline
//   - "edf"              — energy-oblivious earliest deadline first
//   - "greedy-stretch"   — ablation: stretching without the §4.3 guard
//
// For the paper's full evaluation harness (figures 5–9, table 1) see
// cmd/eaexp; for schedule traces of small scenarios see cmd/eatrace.
package eadvfs

import (
	"context"
	"errors"
	"fmt"

	"github.com/eadvfs/eadvfs/internal/cpu"
	"github.com/eadvfs/eadvfs/internal/energy"
	"github.com/eadvfs/eadvfs/internal/experiment"
	"github.com/eadvfs/eadvfs/internal/fault"
	"github.com/eadvfs/eadvfs/internal/obs"
	"github.com/eadvfs/eadvfs/internal/registry"
	"github.com/eadvfs/eadvfs/internal/rng"
	"github.com/eadvfs/eadvfs/internal/sim"
	"github.com/eadvfs/eadvfs/internal/spec"
	"github.com/eadvfs/eadvfs/internal/storage"
	"github.com/eadvfs/eadvfs/internal/task"
)

// Probe receives structured observability output from a run: engine
// events (arrivals, dispatches, segments, completions, deadline misses,
// stalls, fault activations, invariant violations) and the scheduler's
// decision-audit records. The alias re-exports internal/obs.Probe so
// facade users can attach observers without importing internal packages;
// cmd/easim shows the ready-made sinks (JSONL stream, metrics registry).
type Probe = obs.Probe

// Task is a periodic task: every Period time units a job with relative
// deadline Deadline and worst-case execution time WCET (expressed at the
// processor's maximum frequency) is released, starting at Offset.
type Task struct {
	Period   float64
	Deadline float64 // defaults to Period when zero
	WCET     float64
	Offset   float64
}

// Config describes one simulation. Zero values take the documented
// defaults.
type Config struct {
	// Schema declares the JSON schema version of a serialized config:
	// 0 or 1 mean the original unversioned v1 wire form, 2 the current
	// one. Documents using the v2-only members (PolicyParams, TaskModel,
	// TaskParams, Sleep) must declare 2. The member is excluded from the
	// config's digest identity — internal/spec owns the migration and
	// digest-stability contract (DESIGN.md §16). New fields here are
	// omitempty and appended without reordering the originals: the
	// canonical marshal of every v1 config, and with it every cached
	// digest, must stay byte-stable.
	Schema int `json:"schema,omitempty"`

	// Horizon is the simulated duration (default 10 000, the paper's).
	Horizon float64

	// Policy selects the scheduler (default "ea-dvfs"). Names resolve
	// through the scenario registry — Policies() enumerates them, and
	// RegisterPolicy adds new ones.
	Policy string

	// PolicyParams carries the policy's schema-declared parameters
	// (e.g. {"utilization": 0.5} for static-dvfs); unset parameters
	// take their registered defaults. Requires Schema 2 on the wire.
	PolicyParams map[string]any `json:"policy_params,omitempty"`

	// Predictor selects the harvest predictor: "ewma" (default),
	// "oracle", "slot-ewma", "moving-average", "last-value", "zero".
	Predictor string

	// Capacity is the energy storage size C (default 1000).
	Capacity float64

	// InitialEnergy is the starting store level (default full).
	InitialEnergy *float64

	// PMax scales the XScale processor's power table so its maximum
	// power equals this value, in the same units as the harvest power
	// (default 10; see DESIGN.md §5.3 for the calibration).
	PMax float64

	// Tasks is the workload. When empty, a random paper-style task set
	// of NumTasks tasks at Utilization is generated from Seed.
	Tasks []Task

	// NumTasks and Utilization parameterize the generated workload
	// (defaults 5 and 0.4).
	NumTasks    int
	Utilization float64

	// TaskModel names the registered workload generator used when Tasks
	// is empty ("" means "periodic", the paper's §5.1 recipe), and
	// TaskParams carries its schema-declared parameters. Both require
	// Schema 2 on the wire.
	TaskModel  string         `json:"task_model,omitempty"`
	TaskParams map[string]any `json:"task_params,omitempty"`

	// Sleep names a DPM configuration (cpu.SleepPreset) attached to the
	// processor: "" or "none" keeps the paper's model (no idle draw, no
	// sleep states); "default" enables the nap/deep ladder over an idle
	// draw of 5% of PMax, with break-even-gated entry. Requires Schema 2
	// on the wire.
	Sleep string `json:"sleep,omitempty"`

	// Seed drives the workload generator and the solar sample path
	// (default 1).
	Seed uint64

	// ConstantHarvest, when non-nil, replaces the paper's stochastic
	// solar source with a constant-power source.
	ConstantHarvest *float64

	// HarvestTrace, when non-empty, replaces the source with a replayed
	// power trace (one sample per time unit, wrapping).
	HarvestTrace []float64

	// RecordEnergy samples the stored energy once per time unit into
	// Result.StoredEnergy.
	RecordEnergy bool

	// FaultIntensity, in (0, 1], enables the canonical mixed-fault model
	// at that intensity: harvester dropouts and brown-outs, storage
	// capacity fade and leakage spikes, stuck DVFS transitions, predictor
	// blackouts and job WCET overruns, all scaling together. 0 (the
	// default) injects nothing. Faulted runs degrade gracefully and
	// report what happened in Result.Degradation.
	FaultIntensity float64

	// FaultSeed pins the fault schedule (default 1). Policies compared
	// under the same FaultSeed experience the identical faults.
	FaultSeed uint64

	// CheckInvariants arms the engine's runtime self-checker (store
	// bounds, energy conservation, clock monotonicity). A violated run
	// returns a structured error alongside the result.
	CheckInvariants bool

	// Probe, when non-nil, observes the run (engine events and scheduler
	// decision audits). Excluded from serialization: a run manifest
	// identifies the simulation, not its observers.
	Probe Probe `json:"-"`
}

// Degradation summarizes the fault-induced degradation of a run: how long
// each fault class was active and how much energy or work it cost. All
// zero on fault-free runs.
type Degradation struct {
	SourceFaultTime float64 // time units the harvester was dropped out
	LeakSpikeTime   float64 // time units a leakage spike was active
	DVFSStuckTime   float64 // time units DVFS transitions were stuck
	BlackoutTime    float64 // time units predictor observations were lost
	FadeEnergy      float64 // energy shed to capacity fade
	LeakSpikeEnergy float64 // energy lost to leakage spikes
	OverrunWork     float64 // work executed beyond declared WCETs
	DVFSClamps      int     // operating-point changes refused
	StaleForecasts  int     // predictor observations dropped
	Overruns        int     // jobs that overran their WCET
}

// Result summarizes a run.
type Result struct {
	Policy   string
	Released int
	Finished int
	Missed   int
	MissRate float64

	// StoredEnergy is EC(t) at t = 0, 1, … when Config.RecordEnergy is
	// set; nil otherwise.
	StoredEnergy []float64

	// Energy accounting.
	HarvestedEnergy float64
	OverflowEnergy  float64 // discarded because the store was full
	CPUEnergy       float64
	FinalStored     float64

	// Time accounting (sums to Horizon).
	BusyTime  float64
	IdleTime  float64
	StallTime float64

	// LevelTime is the execution time spent at each DVFS operating
	// point, slowest first.
	LevelTime []float64

	// Degradation reports fault-induced degradation; all zero unless
	// Config.FaultIntensity was set.
	Degradation Degradation

	// DPM accounting; all zero unless Config.Sleep names a preset with
	// sleep states. Omitted from JSON when zero, so pre-existing
	// WCET-exact, sleep-free responses keep their exact bytes.
	SleepTime   float64 `json:",omitempty"` // time units spent in a sleep state
	Wakeups     int     `json:",omitempty"` // sleep→active transitions
	DPMOverhead float64 `json:",omitempty"` // transition energy drawn entering/exiting sleep

	// Stochastic-execution accounting; all zero on WCET-exact runs.
	DrawnJobs        int     `json:",omitempty"` // jobs whose actual work was drawn below WCET
	EarlyCompletions int     `json:",omitempty"` // jobs that finished with budget unspent
	ReclaimedWork    float64 `json:",omitempty"` // total unspent WCET budget (work at f_max)
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Horizon == 0 {
		out.Horizon = 10000
	}
	if out.Policy == "" {
		out.Policy = "ea-dvfs"
	}
	if out.Capacity == 0 {
		out.Capacity = 1000
	}
	if out.PMax == 0 {
		out.PMax = 10
	}
	if out.NumTasks == 0 {
		out.NumTasks = 5
	}
	if out.Utilization == 0 {
		out.Utilization = 0.4
	}
	if out.Seed == 0 {
		out.Seed = 1
	}
	return out
}

// Run executes one simulation.
func Run(userCfg Config) (*Result, error) {
	return RunContext(context.Background(), userCfg)
}

// RunContext executes one simulation under a cancellation context: when
// ctx is cancelled (or its deadline passes), the engine aborts at its next
// poll and RunContext returns an error wrapping ctx.Err() with no Result.
// The simulation service (cmd/easerve) uses this to propagate per-request
// timeouts and client disconnects into running engines;
// context.Background() reproduces Run exactly.
func RunContext(ctx context.Context, userCfg Config) (*Result, error) {
	cfg := userCfg.withDefaults()

	if cfg.Schema < 0 || cfg.Schema > spec.Current {
		return nil, fmt.Errorf("eadvfs: unsupported schema version %d (max %d)", cfg.Schema, spec.Current)
	}

	proc := cpu.XScaleScaled(cfg.PMax)
	if cfg.Sleep != "" {
		idle, states, err := cpu.SleepPreset(cfg.Sleep, proc.MaxPower())
		if err != nil {
			return nil, fmt.Errorf("eadvfs: %w", err)
		}
		if idle > 0 || len(states) > 0 {
			proc = proc.WithDPM(idle, states)
		}
	}

	// Resolve the energy source through the scenario registry: the
	// facade's convenience fields name the registered kinds.
	var src energy.Source
	var srcErr error
	switch {
	case cfg.ConstantHarvest != nil && len(cfg.HarvestTrace) > 0:
		return nil, errors.New("eadvfs: ConstantHarvest and HarvestTrace are mutually exclusive")
	case cfg.ConstantHarvest != nil:
		src, srcErr = buildSource("constant", registry.Params{"power": *cfg.ConstantHarvest})
	case len(cfg.HarvestTrace) > 0:
		src, srcErr = buildSource("trace", registry.Params{"samples": cfg.HarvestTrace, "label": "user"})
	default:
		src, srcErr = buildSource("solar", registry.Params{"seed": cfg.Seed})
	}
	if srcErr != nil {
		return nil, fmt.Errorf("eadvfs: %w", srcErr)
	}

	// Resolve the policy and predictor through the registry; the spec
	// context binds "static-dvfs" to the configured utilization unless
	// PolicyParams pins one explicitly.
	pf, err := experiment.PolicyParams(cfg.Policy, cfg.PolicyParams, experiment.Spec{Utilization: cfg.Utilization})
	if err != nil {
		return nil, err
	}
	predF, err := experiment.Predictor(cfg.Predictor)
	if err != nil {
		return nil, err
	}

	tasks, err := buildTasks(cfg, src, proc)
	if err != nil {
		return nil, err
	}

	initial := cfg.Capacity
	if cfg.InitialEnergy != nil {
		initial = *cfg.InitialEnergy
	}
	if initial < 0 || initial > cfg.Capacity {
		return nil, fmt.Errorf("eadvfs: initial energy %v outside [0, %v]", initial, cfg.Capacity)
	}

	simCfg := &sim.Config{
		Horizon:         cfg.Horizon,
		Tasks:           tasks,
		Source:          src,
		Predictor:       predF(src),
		Store:           storage.New(cfg.Capacity, initial),
		CPU:             proc,
		Policy:          pf(),
		ExecSeed:        cfg.Seed, // consulted only when the workload is stochastic
		RecordEnergy:    cfg.RecordEnergy,
		CheckInvariants: cfg.CheckInvariants,
		Probe:           cfg.Probe,
	}
	if ctx != nil && ctx != context.Background() {
		simCfg.Context = ctx
	}
	if cfg.FaultIntensity != 0 {
		if cfg.FaultIntensity < 0 || cfg.FaultIntensity > 1 {
			return nil, fmt.Errorf("eadvfs: fault intensity %v outside [0, 1]", cfg.FaultIntensity)
		}
		fseed := cfg.FaultSeed
		if fseed == 0 {
			fseed = 1
		}
		fspec := fault.AtIntensity(fseed, cfg.FaultIntensity)
		simCfg.Faults = &fspec
	}
	res, err := sim.Run(simCfg)
	if err != nil {
		return nil, err
	}

	out := &Result{
		Policy:          res.Policy,
		Released:        res.Miss.Released,
		Finished:        res.Miss.Finished,
		Missed:          res.Miss.Missed,
		MissRate:        res.Miss.Rate(),
		HarvestedEnergy: res.Meters.Harvested,
		OverflowEnergy:  res.Meters.Overflow,
		CPUEnergy:       res.CPUEnergy,
		FinalStored:     res.FinalLevel,
		BusyTime:        res.BusyTime,
		IdleTime:        res.IdleTime,
		StallTime:       res.StallTime,
		LevelTime:       res.LevelTime,
		Degradation: Degradation{
			SourceFaultTime: res.Degradation.SourceFaultTime,
			LeakSpikeTime:   res.Degradation.LeakSpikeTime,
			DVFSStuckTime:   res.Degradation.DVFSStuckTime,
			BlackoutTime:    res.Degradation.BlackoutTime,
			FadeEnergy:      res.Degradation.FadeEnergy,
			LeakSpikeEnergy: res.Degradation.LeakSpikeEnergy,
			OverrunWork:     res.Degradation.OverrunWork,
			DVFSClamps:      res.Degradation.DVFSClamps,
			StaleForecasts:  res.Degradation.StaleForecasts,
			Overruns:        res.Degradation.Overruns,
		},
	}
	out.SleepTime = res.SleepTime
	out.Wakeups = res.Wakeups
	out.DPMOverhead = res.DPMOverhead
	out.DrawnJobs = res.Slack.DrawnJobs
	out.EarlyCompletions = res.Slack.EarlyCompletions
	out.ReclaimedWork = res.Slack.ReclaimedWork
	if res.EnergySeries != nil {
		out.StoredEnergy = res.EnergySeries.Values
	}
	return out, nil
}

// buildSource resolves and constructs a registered energy source.
func buildSource(kind string, p registry.Params) (energy.Source, error) {
	def, err := registry.Source(kind)
	if err != nil {
		return nil, err
	}
	return def.Build(p)
}

func buildTasks(cfg Config, src energy.Source, proc *cpu.Processor) ([]task.Task, error) {
	if len(cfg.Tasks) == 0 {
		model, err := registry.TaskModel(cfg.TaskModel)
		if err != nil {
			return nil, err
		}
		gen := registry.TaskGen{
			NumTasks:         cfg.NumTasks,
			TargetU:          cfg.Utilization,
			MeanHarvestPower: src.MeanPower(),
			PMax:             proc.MaxPower(),
		}
		if gen.MeanHarvestPower <= 0 {
			// A zero-power source cannot parameterize the generator;
			// fall back to the paper's solar mean.
			gen.MeanHarvestPower = energy.NewSolarModel(0).MeanPower()
		}
		return model.Build(gen, registry.Params(cfg.TaskParams), rng.New(cfg.Seed))
	}
	out := make([]task.Task, len(cfg.Tasks))
	for i, t := range cfg.Tasks {
		d := t.Deadline
		if d == 0 {
			d = t.Period
		}
		out[i] = task.Task{ID: i, Period: t.Period, Deadline: d, WCET: t.WCET, Offset: t.Offset}
		if err := out[i].Validate(); err != nil {
			return nil, fmt.Errorf("eadvfs: %w", err)
		}
	}
	return out, nil
}

// Compare runs the identical workload, harvest sample path and platform
// under each named policy (defaults to Policies() when none are given)
// and returns the results keyed by policy name. Because everything except
// the policy is held fixed, differences are attributable to the
// scheduling decisions alone — the paper's §5.2 "same condition"
// methodology as an API.
func Compare(cfg Config, policies ...string) (map[string]*Result, error) {
	if len(policies) == 0 {
		policies = Policies()
	}
	out := make(map[string]*Result, len(policies))
	for _, p := range policies {
		c := cfg
		c.Policy = p
		res, err := Run(c)
		if err != nil {
			return nil, fmt.Errorf("eadvfs: policy %s: %w", p, err)
		}
		out[p] = res
	}
	return out, nil
}

// Policies lists the registered policy names in registration order.
func Policies() []string { return registry.PolicyNames() }

// Predictors lists the registered predictor names in registration order.
func Predictors() []string { return registry.PredictorNames() }

// Sources lists the registered energy-source kinds in registration order.
func Sources() []string { return registry.SourceNames() }

// TaskModels lists the registered task-model names in registration order.
func TaskModels() []string { return registry.TaskModelNames() }

// The scenario registry, re-exported so external scenario packages can
// register policies, sources, predictors and task models against the
// facade without importing internal packages. A registration is
// self-describing (name, help, parameter schema) and immediately
// resolvable everywhere names are accepted: this Config, the CLIs, the
// HTTP service — and the differential-verification harness, which
// auto-sweeps every registered policy against the reference engine
// (DESIGN.md §16).
type (
	// PolicyDef describes a scheduling-policy registration.
	PolicyDef = registry.PolicyDef
	// SourceDef describes an energy-source registration.
	SourceDef = registry.SourceDef
	// PredictorDef describes a harvest-predictor registration.
	PredictorDef = registry.PredictorDef
	// TaskModelDef describes a workload-generator registration.
	TaskModelDef = registry.TaskModelDef
	// Param is one entry of a registration's parameter schema.
	Param = registry.Param
	// Params carries schema-validated parameter values.
	Params = registry.Params
)

// RegisterPolicy adds a scheduling policy to the scenario registry. It
// panics on a duplicate or malformed registration (registrations are
// init-time programming errors).
func RegisterPolicy(def PolicyDef) { registry.RegisterPolicy(def) }

// RegisterSource adds an energy-source kind to the scenario registry.
func RegisterSource(def SourceDef) { registry.RegisterSource(def) }

// RegisterPredictor adds a harvest predictor to the scenario registry.
func RegisterPredictor(def PredictorDef) { registry.RegisterPredictor(def) }

// RegisterTaskModel adds a workload generator to the scenario registry.
func RegisterTaskModel(def TaskModelDef) { registry.RegisterTaskModel(def) }
