package eadvfs

import (
	"math"
	"testing"
)

func TestRunDefaults(t *testing.T) {
	res, err := Run(Config{Horizon: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "ea-dvfs" {
		t.Fatalf("default policy = %q", res.Policy)
	}
	if res.Released == 0 {
		t.Fatal("no jobs released")
	}
	if res.MissRate < 0 || res.MissRate > 1 {
		t.Fatalf("miss rate %v", res.MissRate)
	}
	if math.Abs(res.BusyTime+res.IdleTime+res.StallTime-2000) > 1e-6 {
		t.Fatal("time accounting does not close")
	}
	if len(res.LevelTime) != 5 {
		t.Fatalf("XScale has 5 levels, got %d", len(res.LevelTime))
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := Config{Horizon: 1500, Seed: 9, RecordEnergy: true}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Missed != b.Missed || a.CPUEnergy != b.CPUEnergy {
		t.Fatal("same config, different results")
	}
	for i := range a.StoredEnergy {
		if a.StoredEnergy[i] != b.StoredEnergy[i] {
			t.Fatal("energy series differ")
		}
	}
}

func TestRunExplicitTasks(t *testing.T) {
	harvest := 0.5
	res, err := Run(Config{
		Horizon:         25,
		Policy:          "lsa",
		Predictor:       "oracle",
		Capacity:        1e6,
		InitialEnergy:   f64(24),
		PMax:            8,
		ConstantHarvest: &harvest,
		Tasks: []Task{
			{Period: 1e9, Deadline: 16, WCET: 4},
			{Period: 1e9, Deadline: 16, WCET: 1.5, Offset: 5},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Figure 1 through the public API (with the 5-level XScale table the
	// counts still hold: LSA runs flat-out and τ2 starves).
	if res.Released != 2 || res.Missed != 1 {
		t.Fatalf("outcome = %+v", res)
	}
}

func TestRunDeadlineDefaultsToPeriod(t *testing.T) {
	res, err := Run(Config{
		Horizon:         100,
		Capacity:        1e5,
		ConstantHarvest: f64(5),
		Tasks:           []Task{{Period: 10, WCET: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Released != 10 || res.Missed != 0 {
		t.Fatalf("outcome = %+v", res)
	}
}

func TestRunHarvestTrace(t *testing.T) {
	res, err := Run(Config{
		Horizon:      200,
		HarvestTrace: []float64{8, 0, 0, 4},
		Capacity:     100,
		Utilization:  0.3,
		RecordEnergy: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.HarvestedEnergy <= 0 {
		t.Fatal("trace source harvested nothing")
	}
	if len(res.StoredEnergy) != 201 {
		t.Fatalf("energy series length %d", len(res.StoredEnergy))
	}
}

func TestRunErrors(t *testing.T) {
	neg := -1.0
	h := 1.0
	cases := []Config{
		{Policy: "bogus"},
		{Predictor: "bogus"},
		{ConstantHarvest: &neg},
		{HarvestTrace: []float64{-1}},
		{ConstantHarvest: &h, HarvestTrace: []float64{1}},
		{InitialEnergy: f64(5000), Capacity: 10},
		{Tasks: []Task{{Period: -1, WCET: 1}}},
		{Tasks: []Task{{Period: 10, Deadline: 2, WCET: 5}}},
	}
	for i, cfg := range cases {
		if _, err := Run(cfg); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestPolicyAndPredictorLists(t *testing.T) {
	for _, p := range Policies() {
		if _, err := Run(Config{Horizon: 50, Policy: p, Utilization: 0.2, NumTasks: 2}); err != nil {
			t.Fatalf("listed policy %q does not run: %v", p, err)
		}
	}
	for _, p := range Predictors() {
		if _, err := Run(Config{Horizon: 50, Predictor: p, Utilization: 0.2, NumTasks: 2}); err != nil {
			t.Fatalf("listed predictor %q does not run: %v", p, err)
		}
	}
}

// EA-DVFS through the facade beats LSA on the paper's workload at low
// utilization — the headline claim, smoke-checked end to end.
func TestHeadlineClaimThroughFacade(t *testing.T) {
	var lsaMissed, eaMissed int
	for seed := uint64(1); seed <= 8; seed++ {
		for _, policy := range []string{"lsa", "ea-dvfs"} {
			res, err := Run(Config{Horizon: 5000, Policy: policy, Capacity: 300, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			if policy == "lsa" {
				lsaMissed += res.Missed
			} else {
				eaMissed += res.Missed
			}
		}
	}
	if eaMissed > lsaMissed/2 {
		t.Fatalf("EA-DVFS missed %d vs LSA %d — expected at least a 50%% reduction at U=0.4", eaMissed, lsaMissed)
	}
}

func f64(v float64) *float64 { return &v }

func TestCompare(t *testing.T) {
	res, err := Compare(Config{Horizon: 1500, Capacity: 300, Seed: 4}, "lsa", "ea-dvfs")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("results for %d policies", len(res))
	}
	// Identical workload: released counts match across policies.
	if res["lsa"].Released != res["ea-dvfs"].Released {
		t.Fatalf("workloads differ: %d vs %d", res["lsa"].Released, res["ea-dvfs"].Released)
	}
	if res["lsa"].Policy != "lsa" || res["ea-dvfs"].Policy != "ea-dvfs" {
		t.Fatal("policy labels wrong")
	}
}

func TestCompareDefaultsToAllPolicies(t *testing.T) {
	res, err := Compare(Config{Horizon: 200, Capacity: 100, NumTasks: 2, Utilization: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(Policies()) {
		t.Fatalf("got %d results, want %d", len(res), len(Policies()))
	}
}

func TestCompareBadPolicy(t *testing.T) {
	if _, err := Compare(Config{Horizon: 100}, "bogus"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}
