// Benchmarks that regenerate the paper's evaluation artifacts — one per
// figure/table (see DESIGN.md §3 for the index) — plus ablation benches
// for the design choices DESIGN.md calls out. Replication counts are
// bench-sized; cmd/eaexp runs the same experiments at any fidelity.
//
// Reported custom metrics carry the experiment outcome so that a bench
// run doubles as a regression check on the *shape* of each result:
// miss rates (missrate/*), normalized remaining energy (energy/*),
// capacity ratios (ratio/*).
package eadvfs_test

import (
	"fmt"
	"testing"

	"github.com/eadvfs/eadvfs"
	"github.com/eadvfs/eadvfs/internal/bench"
	"github.com/eadvfs/eadvfs/internal/core"
	"github.com/eadvfs/eadvfs/internal/cpu"
	"github.com/eadvfs/eadvfs/internal/energy"
	"github.com/eadvfs/eadvfs/internal/experiment"
	"github.com/eadvfs/eadvfs/internal/sched"
	"github.com/eadvfs/eadvfs/internal/sim"
	"github.com/eadvfs/eadvfs/internal/storage"
	"github.com/eadvfs/eadvfs/internal/task"
)

// benchSpec returns the experiment spec sized for benchmarking.
func benchSpec() experiment.Spec {
	s := experiment.DefaultSpec()
	s.Replications = 2
	return s
}

// runCase runs a shared internal/bench workload b.N times and reports
// its shape metrics. The figure benches delegate there so that `go test
// -bench` and cmd/eabench (which writes BENCH_baseline.json) measure the
// same code with the same sizing.
func runCase(b *testing.B, name string) {
	b.Helper()
	c, err := bench.Find(name)
	if err != nil {
		b.Fatal(err)
	}
	metrics, err := c.Run(b.N)
	if err != nil {
		b.Fatal(err)
	}
	for unit, v := range metrics {
		b.ReportMetric(v, unit)
	}
}

// BenchmarkFig5EnergySource regenerates Figure 5: a 10 000-unit sample
// path of the eq. (13) solar source.
func BenchmarkFig5EnergySource(b *testing.B) { runCase(b, "Fig5EnergySource") }

// BenchmarkFig6RemainingEnergyLowU regenerates Figure 6 (U = 0.4):
// EA-DVFS stores clearly more energy than LSA.
func BenchmarkFig6RemainingEnergyLowU(b *testing.B) { runCase(b, "Fig6RemainingEnergyLowU") }

// BenchmarkFig7RemainingEnergyHighU regenerates Figure 7 (U = 0.8): the
// curves nearly coincide.
func BenchmarkFig7RemainingEnergyHighU(b *testing.B) { runCase(b, "Fig7RemainingEnergyHighU") }

// BenchmarkFig8MissRateLowU regenerates Figure 8 (U = 0.4): EA-DVFS cuts
// the deadline miss rate by >50% across the capacity sweep.
func BenchmarkFig8MissRateLowU(b *testing.B) { runCase(b, "Fig8MissRateLowU") }

// BenchmarkFig9MissRateHighU regenerates Figure 9 (U = 0.8): the policies
// converge.
func BenchmarkFig9MissRateHighU(b *testing.B) { runCase(b, "Fig9MissRateHighU") }

// BenchmarkTable1MinCapacityRatio regenerates Table 1: the
// Cmin-LSA / Cmin-EA-DVFS ratio per utilization, shrinking toward 1.
func BenchmarkTable1MinCapacityRatio(b *testing.B) { runCase(b, "Table1MinCapacityRatio") }

// BenchmarkAblationS2Lock compares the paper's locked-s2 EA-DVFS with the
// stateless-recompute variant (DESIGN.md §2.1): the lock is what preserves
// the §4.3 guarantee.
func BenchmarkAblationS2Lock(b *testing.B) {
	spec := benchSpec()
	spec.Replications = 3
	spec.Utilization = 0.6
	spec.Capacities = []float64{200, 1000}
	var res *experiment.MissRateResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiment.MissRateSweep(spec, []string{"ea-dvfs", "ea-dvfs-dynamic"})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Rates["ea-dvfs"][0], "missrate/locked")
	b.ReportMetric(res.Rates["ea-dvfs-dynamic"][0], "missrate/dynamic")
}

// BenchmarkAblationGreedyStretch quantifies the §4.3 guard: greedy
// stretching without the s2 switch versus full EA-DVFS.
func BenchmarkAblationGreedyStretch(b *testing.B) {
	spec := benchSpec()
	spec.Replications = 3
	spec.Utilization = 0.6
	spec.Capacities = []float64{200, 1000}
	var res *experiment.MissRateResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiment.MissRateSweep(spec, []string{"ea-dvfs", "greedy-stretch"})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Rates["ea-dvfs"][0], "missrate/ea-dvfs")
	b.ReportMetric(res.Rates["greedy-stretch"][0], "missrate/greedy")
}

// BenchmarkAblationPredictors isolates the prediction error's share of
// EA-DVFS's miss rate: perfect oracle vs the default EWMA tracker vs the
// pessimist that budgets stored energy only.
func BenchmarkAblationPredictors(b *testing.B) {
	for _, pred := range []string{"oracle", "ewma", "zero"} {
		b.Run(pred, func(b *testing.B) {
			spec := benchSpec()
			spec.Replications = 3
			spec.Predictor = pred
			spec.Capacities = []float64{300}
			var res *experiment.MissRateResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = experiment.MissRateSweep(spec, []string{"ea-dvfs"})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Rates["ea-dvfs"][0], "missrate")
		})
	}
}

// BenchmarkEngine measures raw simulation throughput: one 10 000-unit
// EA-DVFS run of the paper's default workload (memoized solar trace, so
// the bench isolates the engine rather than trace regeneration).
func BenchmarkEngine(b *testing.B) { runCase(b, "Engine") }

// BenchmarkComputePlan measures the per-decision cost of the EA-DVFS
// arithmetic (eqs. 5–9), the hot path of the scheduler.
func BenchmarkComputePlan(b *testing.B) {
	proc := cpu.XScale()
	for i := 0; i < b.N; i++ {
		_ = core.ComputePlan(proc, 123.4, float64(i%100), float64(i%100)+50, 3.7)
	}
}

// BenchmarkPolicyDecide measures a full scheduling decision through the
// policy interface.
func BenchmarkPolicyDecide(b *testing.B) {
	for _, mk := range []func() sched.Policy{
		func() sched.Policy { return sched.LSA{} },
		func() sched.Policy { return core.NewEADVFS() },
	} {
		p := mk()
		b.Run(p.Name(), func(b *testing.B) {
			src := energy.NewConstant(2)
			q := newBenchQueue()
			ctx := &sched.Context{
				Now:       10,
				Queue:     q,
				Stored:    50,
				Capacity:  200,
				CPU:       cpu.XScale(),
				Predictor: energy.NewOracle(src),
			}
			for i := 0; i < b.N; i++ {
				_ = p.Decide(ctx)
			}
		})
	}
}

// BenchmarkAblationStaticDVFS measures the static (energy-oblivious) DVFS
// baseline against EA-DVFS at the crossover utilizations: static wins at
// low U (pure DVFS suffices), EA-DVFS wins at high U (energy awareness
// matters). See EXPERIMENTS.md ablations.
func BenchmarkAblationStaticDVFS(b *testing.B) {
	for _, u := range []float64{0.4, 0.9} {
		b.Run(benchName("u", u), func(b *testing.B) {
			spec := benchSpec()
			spec.Replications = 3
			spec.Utilization = u
			spec.Capacities = []float64{300}
			var res *experiment.MissRateResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = experiment.MissRateSweep(spec, []string{"static-dvfs", "ea-dvfs"})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Rates["static-dvfs"][0], "missrate/static")
			b.ReportMetric(res.Rates["ea-dvfs"][0], "missrate/ea-dvfs")
		})
	}
}

// BenchmarkAblationDVFSLevels sweeps the number of operating points: how
// much granularity does EA-DVFS need before returns diminish?
func BenchmarkAblationDVFSLevels(b *testing.B) {
	spec := benchSpec()
	spec.Replications = 3
	var res *experiment.SensitivityResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiment.LevelCountSweep(spec, []float64{1, 2, 5, 10}, []string{"ea-dvfs"})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Rates["ea-dvfs"][0], "missrate/1-level")
	b.ReportMetric(res.Rates["ea-dvfs"][1], "missrate/2-levels")
	b.ReportMetric(res.Rates["ea-dvfs"][2], "missrate/5-levels")
	b.ReportMetric(res.Rates["ea-dvfs"][3], "missrate/10-levels")
}

// BenchmarkAblationSlackReclamation compares worst-case workloads with
// workloads whose actual execution time is drawn from [0.5·WCET, WCET]:
// early completions feed the lazy policies extra energy headroom.
func BenchmarkAblationSlackReclamation(b *testing.B) {
	for _, ratio := range []float64{0, 0.5} {
		b.Run(benchName("bcwc", ratio), func(b *testing.B) {
			spec := benchSpec()
			var missed, released int
			for i := 0; i < b.N; i++ {
				missed, released = 0, 0
				for r := 0; r < 3; r++ {
					rep, err := experiment.Replicate(spec, r)
					if err != nil {
						b.Fatal(err)
					}
					src := energy.NewSolarModel(rep.SourceSeed)
					res, err := sim.Run(&sim.Config{
						Horizon:   spec.Horizon,
						Tasks:     rep.Tasks,
						Source:    src,
						Predictor: energy.NewEWMA(0.2),
						Store:     storage.NewIdeal(300),
						CPU:       spec.Processor(),
						Policy:    core.NewEADVFS(),
						BCWCRatio: ratio,
					})
					if err != nil {
						b.Fatal(err)
					}
					missed += res.Miss.Missed
					released += res.Miss.Released
				}
			}
			b.ReportMetric(float64(missed)/float64(released), "missrate")
		})
	}
}

// BenchmarkAblationHybridStorage compares a single ideal store against a
// Prometheus-style supercap+battery hybrid of the same total size with a
// lossy battery tier.
func BenchmarkAblationHybridStorage(b *testing.B) {
	stores := map[string]func() storage.Reservoir{
		"ideal-300":      func() storage.Reservoir { return storage.New(300, 300) },
		"hybrid-50-250":  func() storage.Reservoir { return storage.NewHybrid(50, 50, 250, 250, 0.8) },
		"lossy-batt-300": func() storage.Reservoir { return storage.NewHybrid(0.001, 0.001, 300, 300, 0.8) },
	}
	for name, mk := range stores {
		b.Run(name, func(b *testing.B) {
			spec := benchSpec()
			var missed, released int
			for i := 0; i < b.N; i++ {
				missed, released = 0, 0
				for r := 0; r < 3; r++ {
					rep, err := experiment.Replicate(spec, r)
					if err != nil {
						b.Fatal(err)
					}
					src := energy.NewSolarModel(rep.SourceSeed)
					res, err := sim.Run(&sim.Config{
						Horizon:   spec.Horizon,
						Tasks:     rep.Tasks,
						Source:    src,
						Predictor: energy.NewEWMA(0.2),
						Store:     mk(),
						CPU:       spec.Processor(),
						Policy:    core.NewEADVFS(),
					})
					if err != nil {
						b.Fatal(err)
					}
					missed += res.Miss.Missed
					released += res.Miss.Released
				}
			}
			b.ReportMetric(float64(missed)/float64(released), "missrate")
		})
	}
}

// BenchmarkAblationWeather runs the Figure-8 comparison under a two-state
// Markov weather layer (long overcast spells at 30% power) instead of the
// paper's i.i.d. noise: autocorrelated lulls are harder to ride through,
// and the EA-DVFS advantage must survive them.
func BenchmarkAblationWeather(b *testing.B) {
	for _, weather := range []bool{false, true} {
		name := "iid"
		if weather {
			name = "markov"
		}
		b.Run(name, func(b *testing.B) {
			spec := benchSpec()
			missed := map[string]int{}
			released := map[string]int{}
			for i := 0; i < b.N; i++ {
				missed = map[string]int{}
				released = map[string]int{}
				for r := 0; r < 3; r++ {
					rep, err := experiment.Replicate(spec, r)
					if err != nil {
						b.Fatal(err)
					}
					var src energy.Source = energy.NewSolarModel(rep.SourceSeed)
					if weather {
						src = energy.NewMarkovWeather(src, rep.SourceSeed^0xABCD, 120, 60, 0.3)
					}
					for _, policy := range []string{"lsa", "ea-dvfs"} {
						pf, err := experiment.Policy(policy)
						if err != nil {
							b.Fatal(err)
						}
						res, err := sim.Run(&sim.Config{
							Horizon:   spec.Horizon,
							Tasks:     rep.Tasks,
							Source:    src,
							Predictor: energy.NewEWMA(0.2),
							Store:     storage.NewIdeal(500),
							CPU:       spec.Processor(),
							Policy:    pf(),
						})
						if err != nil {
							b.Fatal(err)
						}
						missed[policy] += res.Miss.Missed
						released[policy] += res.Miss.Released
					}
				}
			}
			b.ReportMetric(float64(missed["lsa"])/float64(released["lsa"]), "missrate/lsa")
			b.ReportMetric(float64(missed["ea-dvfs"])/float64(released["ea-dvfs"]), "missrate/ea")
		})
	}
}

func benchName(k string, v float64) string {
	return fmt.Sprintf("%s=%g", k, v)
}

func newBenchQueue() *task.ReadyQueue {
	q := task.NewReadyQueue()
	q.Push(task.NewJob(0, 0, 8, 40, 3))
	q.Push(task.NewJob(1, 0, 9, 25, 2))
	q.Push(task.NewJob(2, 0, 10, 60, 5))
	return q
}

// BenchmarkFacadeRun measures an end-to-end run through the public API.
func BenchmarkFacadeRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := eadvfs.Run(eadvfs.Config{Horizon: 2000, Seed: uint64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}
