package eadvfs_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	eadvfs "github.com/eadvfs/eadvfs"
	"github.com/eadvfs/eadvfs/internal/digest"
	"github.com/eadvfs/eadvfs/internal/service"
	"github.com/eadvfs/eadvfs/internal/spec"
)

// -update regenerates testdata/specs/digests.golden from the corpus.
var updateGolden = flag.Bool("update", false, "rewrite golden files")

const specDir = "testdata/specs"

// corpusFiles returns the v1 documents under testdata/specs in sorted
// order: sim_*.json are /v1/sim configs, sweep_*.json are /v1/sweep
// requests.
func corpusFiles(t *testing.T) []string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(specDir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(names) < 6 {
		t.Fatalf("corpus too small: %d files under %s", len(names), specDir)
	}
	sort.Strings(names)
	return names
}

// TestSpecCorpusGoldenDigests is the upgrade-compatibility contract: every
// committed v1 document migrates to schema 2 with a byte-identical compact
// digest, and the digests match the committed golden file — so the service
// LRU, the fabric worker caches and the fleet affinity ring all stay warm
// across the v1→v2 upgrade.
func TestSpecCorpusGoldenDigests(t *testing.T) {
	var lines []string
	for _, name := range corpusFiles(t) {
		raw, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		base := filepath.Base(name)
		v, err := spec.Version(raw)
		if err != nil {
			t.Errorf("%s: %v", base, err)
			continue
		}
		if v != 1 {
			t.Errorf("%s: corpus document declares schema %d, want unversioned v1", base, v)
		}
		migrated, err := spec.Migrate(raw)
		if err != nil {
			t.Fatalf("%s: migrate: %v", base, err)
		}
		if mv, err := spec.Version(migrated); err != nil || mv != spec.Current {
			t.Errorf("%s: migrated version = %d, %v; want %d", base, mv, err, spec.Current)
		}
		d1, err := spec.Digest(raw)
		if err != nil {
			t.Fatalf("%s: digest: %v", base, err)
		}
		d2, err := spec.Digest(migrated)
		if err != nil {
			t.Fatalf("%s: digest(migrated): %v", base, err)
		}
		if d1 != d2 {
			t.Errorf("%s: migration changed the digest: %s != %s", base, d1, d2)
		}
		lines = append(lines, fmt.Sprintf("%s %s", base, d1))
	}
	got := strings.Join(lines, "\n") + "\n"

	goldenPath := filepath.Join(specDir, "digests.golden")
	if *updateGolden {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run `go test -run TestSpecCorpusGoldenDigests -update .`): %v", err)
	}
	if got != string(want) {
		t.Errorf("corpus digests drifted from %s — a v1 cache key changed.\ngot:\n%swant:\n%s",
			goldenPath, got, want)
	}
}

// TestSpecCorpusStructDigests re-checks digest stability at the struct
// layer: decoding a v1 document and its migrated form into the typed
// config and re-marshaling canonically (Schema zeroed, exactly what the
// service hashes) must produce identical bytes.
func TestSpecCorpusStructDigests(t *testing.T) {
	for _, name := range corpusFiles(t) {
		base := filepath.Base(name)
		t.Run(base, func(t *testing.T) {
			raw, err := os.ReadFile(name)
			if err != nil {
				t.Fatal(err)
			}
			migrated, err := spec.Migrate(raw)
			if err != nil {
				t.Fatal(err)
			}
			canon := func(doc []byte) []byte {
				t.Helper()
				if strings.HasPrefix(base, "sweep_") {
					var req service.SweepRequest
					dec := json.NewDecoder(bytes.NewReader(doc))
					dec.DisallowUnknownFields()
					if err := dec.Decode(&req); err != nil {
						t.Fatalf("corpus request does not decode strictly: %v", err)
					}
					req.Schema = 0
					out, err := json.Marshal(req)
					if err != nil {
						t.Fatal(err)
					}
					return out
				}
				var cfg eadvfs.Config
				dec := json.NewDecoder(bytes.NewReader(doc))
				dec.DisallowUnknownFields()
				if err := dec.Decode(&cfg); err != nil {
					t.Fatalf("corpus document does not decode strictly: %v", err)
				}
				cfg.Schema = 0
				out, err := json.Marshal(cfg)
				if err != nil {
					t.Fatal(err)
				}
				return out
			}
			c1, c2 := canon(raw), canon(migrated)
			if !bytes.Equal(c1, c2) {
				t.Errorf("canonical forms differ across migration:\n  v1: %s\n  v2: %s", c1, c2)
			}
			if digest.Compact(c1) != digest.Compact(c2) {
				t.Errorf("struct-level digest changed across migration")
			}
		})
	}
}

// TestSpecCorpusServiceCacheWarm drives the full wire path: POST each v1
// document, then its migrated v2 form, against a live service. The second
// request must be an X-Cache hit with a byte-identical body — proof the
// upgrade never cold-starts a cache.
func TestSpecCorpusServiceCacheWarm(t *testing.T) {
	srv := httptest.NewServer(service.New(service.Options{Workers: 2}).Handler())
	defer srv.Close()

	for _, name := range corpusFiles(t) {
		base := filepath.Base(name)
		t.Run(base, func(t *testing.T) {
			raw, err := os.ReadFile(name)
			if err != nil {
				t.Fatal(err)
			}
			migrated, err := spec.Migrate(raw)
			if err != nil {
				t.Fatal(err)
			}
			endpoint := srv.URL + "/v1/sim"
			if strings.HasPrefix(base, "sweep_") {
				endpoint = srv.URL + "/v1/sweep"
			}
			post := func(body []byte) (string, []byte) {
				t.Helper()
				resp, err := http.Post(endpoint, "application/json", bytes.NewReader(body))
				if err != nil {
					t.Fatal(err)
				}
				defer resp.Body.Close()
				var buf bytes.Buffer
				if _, err := buf.ReadFrom(resp.Body); err != nil {
					t.Fatal(err)
				}
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("POST %s: %d: %s", endpoint, resp.StatusCode, buf.String())
				}
				return resp.Header.Get("X-Cache"), buf.Bytes()
			}
			cache1, body1 := post(raw)
			if cache1 != "miss" {
				t.Errorf("first (v1) request: X-Cache = %q, want miss", cache1)
			}
			cache2, body2 := post(migrated)
			if cache2 != "hit" {
				t.Errorf("migrated (v2) request: X-Cache = %q, want hit — upgrade cold-started the cache", cache2)
			}
			if !bytes.Equal(body1, body2) {
				t.Errorf("v1 and migrated v2 responses differ:\n  v1: %s\n  v2: %s", body1, body2)
			}
		})
	}
}

// TestSpecCorpusGoldenResults is the behavioral half of the upgrade
// contract: posting each committed WCET-exact v1 document against a live
// service must produce a response whose digest matches the committed
// golden — the simulated results themselves, not just the cache keys,
// are byte-stable across releases. The stochastic-execution subsystem
// rides behind strictly opt-in members (BCWCRatio, task_model,
// task_params, sleep), so no corpus document may ever move.
// -update regenerates testdata/specs/results.golden.
func TestSpecCorpusGoldenResults(t *testing.T) {
	srv := httptest.NewServer(service.New(service.Options{Workers: 2}).Handler())
	defer srv.Close()

	var lines []string
	for _, name := range corpusFiles(t) {
		base := filepath.Base(name)
		raw, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		endpoint := srv.URL + "/v1/sim"
		if strings.HasPrefix(base, "sweep_") {
			endpoint = srv.URL + "/v1/sweep"
		}
		resp, err := http.Post(endpoint, "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		_, err = buf.ReadFrom(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: POST %s: %d: %s", base, endpoint, resp.StatusCode, buf.String())
		}
		lines = append(lines, fmt.Sprintf("%s %s", base, digest.Compact(buf.Bytes())))
	}
	got := strings.Join(lines, "\n") + "\n"

	goldenPath := filepath.Join(specDir, "results.golden")
	if *updateGolden {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run `go test -run TestSpecCorpusGoldenResults -update .`): %v", err)
	}
	if got != string(want) {
		t.Errorf("corpus results drifted from %s — a v1 document no longer simulates to the same bytes.\ngot:\n%swant:\n%s",
			goldenPath, got, want)
	}
}

// TestV2KeysMatchConfigTags cross-checks spec.V2Keys against the
// eadvfs.Config JSON tags by reflection, so the wire gate and the struct
// can't drift: every lowercase-tagged member other than "schema" must be
// declared a v2 key, and every v2 key must exist on the struct.
func TestV2KeysMatchConfigTags(t *testing.T) {
	tagged := map[string]bool{}
	rt := reflect.TypeOf(eadvfs.Config{})
	for i := 0; i < rt.NumField(); i++ {
		tag := rt.Field(i).Tag.Get("json")
		name, _, _ := strings.Cut(tag, ",")
		if name == "" || name == "-" || name == "schema" {
			continue
		}
		tagged[name] = true
	}
	for _, k := range spec.V2Keys {
		if !tagged[k] {
			t.Errorf("spec.V2Keys lists %q but eadvfs.Config has no such json tag", k)
		}
		delete(tagged, k)
	}
	for name := range tagged {
		t.Errorf("eadvfs.Config tags member %q but spec.V2Keys does not list it — an old server would silently drop it", name)
	}
}
